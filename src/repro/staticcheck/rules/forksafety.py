"""Runtime fork- and IO-safety rules (family F).

The campaign runtime's crash-consistency story rests on two invariants:
workers are *spawned* (never forked — a forked child inherits live file
handles, signal handlers and RNG state), signal handlers are owned by
the executor's drain machinery alone, and every whole-file write of
campaign state goes through the tmp + fsync + rename pattern that
``Journal.compact()`` established (now shared as
:func:`repro.ioutil.atomic_write`).

The distributed fabric adds a third liveness invariant: no socket or
HTTP call in a fabric/executor module may run without an explicit
timeout, because lease expiry and orphan detection only work when every
RPC eventually returns (F303).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Union

from ..astutil import const_value, resolve_call
from ..findings import Finding, Module, Rule
from ..registry import register

__all__ = [
    "ForkSafety", "AtomicWrite", "UntimedNetworkCall", "UnboundedBodyRead",
]

#: calls that make the rename-pattern visible inside a function body
_ATOMIC_MARKERS = ("os.replace", "os.rename", "atomic_write")


@register
class ForkSafety(Rule):
    code = "F301"
    slug = "fork-safety"
    family = "forksafety"
    summary = (
        "fork start-method, os.fork, or a signal handler registered "
        "outside the executor"
    )
    rationale = (
        "Forked workers inherit open journal file descriptors, the "
        "parent's signal handlers and its RNG state — all three break "
        "the isolation and resume guarantees tests/chaos proves.  The "
        "executor uses spawn, and it alone installs (and restores) the "
        "SIGINT/SIGTERM drain handlers."
    )
    scope = None

    def check(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = resolve_call(node, module.aliases)
            if name in ("os.fork", "os.forkpty"):
                yield module.finding(
                    node, self.code,
                    f"{name}() forks the campaign driver; workers must "
                    "be spawned (multiprocessing spawn context)",
                )
                continue
            if name is None:
                continue
            tail = name.rpartition(".")[2]
            if tail in ("get_context", "set_start_method") and node.args:
                if const_value(node.args[0]) == "fork":
                    yield module.finding(
                        node, self.code,
                        "fork start method: forked workers inherit file "
                        "handles, signal handlers and RNG state; use "
                        "spawn",
                    )
            elif name == "signal.signal" and "executor" not in module.scopes:
                yield module.finding(
                    node, self.code,
                    "signal handler registered outside the executor; "
                    "drain handlers are owned by runtime.Executor (and "
                    "restored by it)",
                )


def _write_mode(call: ast.Call) -> Optional[str]:
    """The constant file mode of an open()-style call, if any."""
    mode: Optional[ast.expr] = None
    if len(call.args) >= 2:
        mode = call.args[1]
    elif isinstance(call.func, ast.Attribute) and call.args:
        # path.open("w") — mode is the first argument
        mode = call.args[0]
    for kw in call.keywords:
        if kw.arg == "mode":
            mode = kw.value
    value = const_value(mode)
    return value if isinstance(value, str) else None


@register
class AtomicWrite(Rule):
    code = "F302"
    slug = "atomic-write"
    family = "forksafety"
    summary = (
        "truncating file write in a persistence module outside the "
        "tmp + fsync + rename pattern"
    )
    rationale = (
        "A campaign killed mid-write must leave either the old or the "
        "new file, never a torn hybrid: journals, metric snapshots and "
        "trace exports are all read back by resume and analysis "
        "tooling.  Whole-file writes must go through "
        "repro.ioutil.atomic_write (or an explicit tmp+os.replace in "
        "the same function); appends are exempt — the journal's "
        "append path is protected by per-record CRCs instead."
    )
    scope = "persistence"

    def check(self, module: Module) -> Iterator[Finding]:
        funcs = [
            node for node in ast.walk(module.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        for call in (
            n for n in ast.walk(module.tree) if isinstance(n, ast.Call)
        ):
            what = self._sink(call, module)
            if what is None:
                continue
            if self._blessed(call, module, funcs):
                continue
            yield module.finding(
                call, self.code,
                f"{what} replaces a file non-atomically; use "
                "repro.ioutil.atomic_write (tmp + fsync + rename)",
            )

    def _sink(self, call: ast.Call, module: Module) -> Optional[str]:
        """Describe the truncating write this call performs, if any."""
        name = resolve_call(call, module.aliases)
        if name == "open" or (
            isinstance(call.func, ast.Attribute) and call.func.attr == "open"
            and name not in ("os.open",)
        ):
            mode = _write_mode(call)
            if mode is not None and mode.startswith(("w", "x")):
                return f"open(..., {mode!r})"
            return None
        if isinstance(call.func, ast.Attribute) and call.func.attr in (
            "write_text", "write_bytes"
        ):
            return f".{call.func.attr}(...)"
        if name in (
            "numpy.save", "numpy.savez", "numpy.savez_compressed",
            "numpy.savetxt",
        ):
            return name.replace("numpy", "np") + "(...)"
        return None

    def _blessed(
        self,
        call: ast.Call,
        module: Module,
        funcs: List[Union[ast.FunctionDef, ast.AsyncFunctionDef]],
    ) -> bool:
        """Whether the enclosing function exhibits the rename pattern."""
        scan_root = _enclosing_function(call, funcs) or module.tree
        for node in ast.walk(scan_root):
            if not isinstance(node, ast.Call):
                continue
            name = resolve_call(node, module.aliases)
            if name is None:
                continue
            if name in _ATOMIC_MARKERS or name.rpartition(".")[2] == (
                "atomic_write"
            ):
                return True
        return False


def _enclosing_function(
    node: ast.AST,
    funcs: List[Union[ast.FunctionDef, ast.AsyncFunctionDef]],
) -> Optional[Union[ast.FunctionDef, ast.AsyncFunctionDef]]:
    """The innermost function whose span contains ``node``, if any."""
    enclosing: Optional[Union[ast.FunctionDef, ast.AsyncFunctionDef]] = None
    line = getattr(node, "lineno", 0)
    for fn in funcs:
        if fn.lineno <= line <= (fn.end_lineno or fn.lineno):
            # innermost wins: keep the latest-starting candidate
            if enclosing is None or fn.lineno >= enclosing.lineno:
                enclosing = fn
    return enclosing


#: constructors/openers that take an optional timeout (keyword position
#: of the positional timeout argument, or None when only keyword works)
_NETWORK_SINKS = {
    "http.client.HTTPConnection": 2,
    "http.client.HTTPSConnection": 2,
    "socket.create_connection": 1,
    "urllib.request.urlopen": 2,
}


@register
class UntimedNetworkCall(Rule):
    code = "F303"
    slug = "untimed-network-call"
    family = "forksafety"
    summary = (
        "socket/HTTP call without an explicit timeout in a fabric or "
        "executor module"
    )
    rationale = (
        "The fabric's liveness guarantees (lease expiry re-dispatches "
        "work, dead coordinators demote workers to exit) all assume no "
        "RPC can block forever.  Python sockets default to *no* "
        "timeout, so one forgotten keyword turns a partition into a "
        "hung campaign.  Every connection constructor must pass "
        "``timeout=`` (or call ``settimeout`` with a bound); "
        "``settimeout(None)`` re-disables it and is equally flagged."
    )
    scope = "fabric"

    #: the rule also guards the single-host executor (same liveness
    #: argument: drains must never wait on an unbounded socket)
    _SCOPES = frozenset({"fabric", "executor"})

    def applies(self, module: Module) -> bool:
        return bool(self._SCOPES & module.scopes)

    def check(self, module: Module) -> Iterator[Finding]:
        funcs = [
            node for node in ast.walk(module.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        for call in (
            n for n in ast.walk(module.tree) if isinstance(n, ast.Call)
        ):
            if (
                isinstance(call.func, ast.Attribute)
                and call.func.attr == "settimeout"
                and call.args
                and const_value(call.args[0]) is None
            ):
                yield module.finding(
                    call, self.code,
                    "settimeout(None) disables the socket timeout; a "
                    "dead peer then blocks the fabric forever",
                )
                continue
            name = resolve_call(call, module.aliases)
            if name is None:
                continue
            if name == "socket.socket":
                if not self._sets_timeout_nearby(call, module, funcs):
                    yield module.finding(
                        call, self.code,
                        "socket.socket() starts with no timeout; call "
                        "settimeout(...) in the same function or use "
                        "socket.create_connection(..., timeout=...)",
                    )
                continue
            pos = _NETWORK_SINKS.get(name)
            if pos is None:
                continue
            if self._has_timeout(call, pos):
                continue
            yield module.finding(
                call, self.code,
                f"{name}(...) without an explicit timeout: a dead or "
                "partitioned peer blocks this call forever; pass "
                "timeout=",
            )

    @staticmethod
    def _has_timeout(call: ast.Call, pos: int) -> bool:
        """Whether the call pins a timeout (keyword, position or **kw)."""
        for kw in call.keywords:
            if kw.arg == "timeout":
                return const_value(kw.value) is not None
            if kw.arg is None:  # **kwargs: can't see inside, trust it
                return True
        return len(call.args) > pos

    def _sets_timeout_nearby(
        self,
        call: ast.Call,
        module: Module,
        funcs: List[Union[ast.FunctionDef, ast.AsyncFunctionDef]],
    ) -> bool:
        """Whether the enclosing function calls settimeout(bound)."""
        scan_root = _enclosing_function(call, funcs) or module.tree
        for node in ast.walk(scan_root):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "settimeout"
                and node.args
                and const_value(node.args[0]) is not None
            ):
                return True
        return False


@register
class UnboundedBodyRead(Rule):
    code = "F304"
    slug = "unbounded-body-read"
    family = "forksafety"
    summary = (
        "HTTP handler reads its request body without a constant bound"
    )
    rationale = (
        "``rfile.read(length)`` with a client-supplied Content-Length "
        "(or no argument at all) lets one hostile or buggy request "
        "allocate arbitrary memory before admission control can refuse "
        "it — the classic way a serving process dies under one bad "
        "client instead of shedding it.  Handlers must cap the length "
        "*first* and read in constant-bounded chunks; "
        "``ServiceGuard.read_body`` packages the whole pattern "
        "(validate, 413/400, chunked read)."
    )
    scope = "service"

    #: both HTTP surfaces are held to this: the report dashboard and
    #: the fabric coordinator's RPC endpoint
    _SCOPES = frozenset({"service", "fabric"})

    def applies(self, module: Module) -> bool:
        return bool(self._SCOPES & module.scopes)

    def check(self, module: Module) -> Iterator[Finding]:
        for call in (
            n for n in ast.walk(module.tree) if isinstance(n, ast.Call)
        ):
            if not self._is_rfile_read(call):
                continue
            if not call.args:
                yield module.finding(
                    call, self.code,
                    "rfile.read() with no size reads until the peer "
                    "closes; a slow client pins this thread and its "
                    "memory forever",
                )
                continue
            if self._bounded(call.args[0]):
                continue
            yield module.finding(
                call, self.code,
                "rfile.read(n) where n comes from the request: a lying "
                "Content-Length allocates unbounded memory; clamp it "
                "(min(n, CAP)) or use ServiceGuard.read_body",
            )

    @staticmethod
    def _is_rfile_read(call: ast.Call) -> bool:
        """Whether this is ``<something>.rfile.read(...)``."""
        func = call.func
        if not (isinstance(func, ast.Attribute) and func.attr == "read"):
            return False
        recv = func.value
        if isinstance(recv, ast.Name) and recv.id == "rfile":
            return True
        return isinstance(recv, ast.Attribute) and recv.attr == "rfile"

    @staticmethod
    def _bounded(arg: ast.expr) -> bool:
        """A size argument that cannot exceed a compile-time constant."""
        if isinstance(const_value(arg), int):
            return True
        return (
            isinstance(arg, ast.Call)
            and isinstance(arg.func, ast.Name)
            and arg.func.id == "min"
            and len(arg.args) >= 2
        )
