"""O402 fixture, majority half: fixture.jobs_active as a counter, twice."""

from repro.obs import get_metrics


def record():
    get_metrics().counter("fixture.jobs_active").inc()
    get_metrics().counter("fixture.jobs_active").inc()
