"""GPU/APU simulation substrate: ISA, caches, memory, execution, liveness."""

from .cache import L1_CONFIG, L2_CONFIG, Cache, CacheConfig, MemSystem
from .gpu import Apu, ComputeUnit, LaunchStats, Wavefront
from .isa import (
    WAVEFRONT_LANES,
    Instr,
    Program,
    ProgramBuilder,
    fimm,
    imm,
    s,
    v,
)
from .liveness import analyze_liveness
from .memory import GlobalMemory, Lds

__all__ = [
    "L1_CONFIG",
    "L2_CONFIG",
    "Cache",
    "CacheConfig",
    "MemSystem",
    "Apu",
    "ComputeUnit",
    "LaunchStats",
    "Wavefront",
    "WAVEFRONT_LANES",
    "Instr",
    "Program",
    "ProgramBuilder",
    "fimm",
    "imm",
    "s",
    "v",
    "analyze_liveness",
    "GlobalMemory",
    "Lds",
]
