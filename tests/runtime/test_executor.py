"""Tests for the fault-tolerant campaign runtime executor."""

import json
import warnings

import pytest

from repro.runtime import (
    Executor,
    Journal,
    RetryPolicy,
    Task,
    TaskOutcome,
    TaskResult,
    classify_exception,
)
from repro.runtime.errors import InfraError, SimulationCrash, SimulationHang

from .stubs import dispatch

TAXONOMY_TASKS = [
    Task("t/ok", ("ok", 21)),
    Task("t/crash", ("crash", None)),
    Task("t/hang", ("hang", None)),
    Task("t/bug", ("bug", None)),
    Task("t/infra", ("infra", None)),
]

EXPECTED_OUTCOMES = {
    "t/ok": TaskOutcome.OK,
    "t/crash": TaskOutcome.SIM_CRASH,
    "t/hang": TaskOutcome.SIM_HANG,
    "t/bug": TaskOutcome.INFRA_ERROR,
    "t/infra": TaskOutcome.INFRA_ERROR,
}


class TestClassifyException:
    def test_typed_exceptions(self):
        assert classify_exception(SimulationHang()) == TaskOutcome.SIM_HANG
        assert classify_exception(SimulationCrash()) == TaskOutcome.SIM_CRASH
        assert classify_exception(InfraError()) == TaskOutcome.INFRA_ERROR

    def test_max_cycles_runtime_error_is_hang(self):
        exc = RuntimeError("simulation exceeded max_cycles (runaway kernel?)")
        assert classify_exception(exc) == TaskOutcome.SIM_HANG

    def test_plain_exception_is_infra(self):
        try:
            raise KeyError("nope")
        except KeyError as exc:
            assert classify_exception(exc) == TaskOutcome.INFRA_ERROR

    def test_simulator_frame_is_crash(self):
        from repro.arch import Apu, GlobalMemory

        try:
            Apu(memory=GlobalMemory()).finish()
            Apu(memory=GlobalMemory()).launch(None, 0, [])
        except Exception as exc:
            assert classify_exception(exc) == TaskOutcome.SIM_CRASH


class TestInlineExecutor:
    def test_taxonomy(self):
        results = Executor(dispatch, jobs=0).run(TAXONOMY_TASKS)
        assert {k: r.outcome for k, r in results.items()} == EXPECTED_OUTCOMES
        assert results["t/ok"].value == 42
        assert results["t/crash"].error.startswith("SimulationCrash")

    def test_failures_do_not_abort_the_batch(self):
        results = Executor(dispatch, jobs=0).run(TAXONOMY_TASKS)
        assert len(results) == len(TAXONOMY_TASKS)

    def test_retry_then_succeed(self):
        calls = []

        def flaky_inline(payload):
            calls.append(payload)
            if len(calls) == 1:
                raise InfraError("transient")
            return "recovered"

        retry = RetryPolicy(
            max_attempts=3, retry_on=(TaskOutcome.INFRA_ERROR,)
        )
        results = Executor(flaky_inline, jobs=0, retry=retry).run([Task("f")])
        assert results["f"].outcome == TaskOutcome.OK
        assert results["f"].value == "recovered"
        assert results["f"].attempts == 2

    def test_semantic_outcomes_never_retried(self):
        calls = []

        def crashing(payload):
            calls.append(payload)
            raise SimulationCrash("trap")

        retry = RetryPolicy(max_attempts=5)
        results = Executor(crashing, jobs=0, retry=retry).run([Task("c")])
        assert results["c"].outcome == TaskOutcome.SIM_CRASH
        assert len(calls) == 1

    def test_duplicate_task_ids_rejected(self):
        with pytest.raises(ValueError):
            Executor(dispatch, jobs=0).run([Task("a"), Task("a")])

    def test_timeout_without_isolation_warns_once(self):
        from repro import obs
        from repro.runtime.executor import _reset_inline_timeout_warning

        _reset_inline_timeout_warning()
        registry, _ = obs.enable()
        try:
            with pytest.warns(UserWarning):
                Executor(dispatch, jobs=0, timeout=1.0)
            # The warning is once-per-process; the metric records every
            # occurrence so campaigns can still see the misconfiguration.
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                Executor(dispatch, jobs=0, timeout=1.0)
            counters = registry.snapshot()["counters"]
            assert counters["runtime.timeout_unenforced"] == 2
        finally:
            obs.disable()
            _reset_inline_timeout_warning()

    def test_initializer_runs_inline(self):
        seen = []
        ex = Executor(
            lambda p: seen[0], jobs=0,
            initializer=lambda tag: seen.append(tag), initargs=("init",),
        )
        assert ex.run([Task("x")])["x"].value == "init"


class TestJournalResume:
    def test_resume_skips_completed_tasks(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        first = Executor(dispatch, jobs=0, journal=journal).run(
            [Task("a", ("ok", 1)), Task("b", ("ok", 2))]
        )

        def must_not_run(payload):
            raise AssertionError("journaled task re-executed")

        second = Executor(must_not_run, jobs=0, journal=journal).run(
            [Task("a", ("ok", 1)), Task("b", ("ok", 2))]
        )
        assert {k: r.value for k, r in second.items()} == {
            k: r.value for k, r in first.items()
        }

    def test_resume_runs_only_missing_tasks(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        Executor(dispatch, jobs=0, journal=journal).run([Task("a", ("ok", 1))])
        results = Executor(dispatch, jobs=0, journal=journal).run(
            [Task("a", ("bug", None)), Task("b", ("ok", 2))]
        )
        # "a" came from the journal (so its old OK verdict), "b" ran fresh.
        assert results["a"].outcome == TaskOutcome.OK
        assert results["b"].value == 4

    def test_journal_records_meta_and_outcome(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        Executor(dispatch, jobs=0, journal=journal).run(
            [Task("a", ("ok", 3), meta={"spec": [1, 2]})]
        )
        rec = json.loads(journal.read_text().splitlines()[0])
        assert rec["task"] == "a"
        assert rec["outcome"] == "ok"
        assert rec["value"] == 6
        assert rec["meta"] == {"spec": [1, 2]}
        assert rec["attempts"] == 1
        assert rec["duration"] >= 0

    def test_truncated_final_line_tolerated(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        Executor(dispatch, jobs=0, journal=journal).run(
            [Task("a", ("ok", 1)), Task("b", ("ok", 2))]
        )
        text = journal.read_text()
        lines = text.splitlines()
        journal.write_text(lines[0] + "\n" + lines[1][: len(lines[1]) // 2])
        loaded = Journal(journal).load()
        assert set(loaded) == {"a"}
        # Resume re-runs the lost task and seals the partial line.
        results = Executor(dispatch, jobs=0, journal=journal).run(
            [Task("a", ("ok", 1)), Task("b", ("ok", 2))]
        )
        assert results["b"].value == 4

    def test_directory_path_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            Journal(tmp_path)

    def test_failed_tasks_are_journaled_too(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        Executor(dispatch, jobs=0, journal=journal).run([Task("x", ("bug", 0))])
        loaded = Journal(journal).load()
        assert loaded["x"]["outcome"] == TaskOutcome.INFRA_ERROR


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        p = RetryPolicy(max_attempts=5, backoff=1.0, backoff_factor=2.0,
                        max_backoff=3.0)
        assert p.delay("t", 1) == 1.0
        assert p.delay("t", 2) == 2.0
        assert p.delay("t", 3) == 3.0  # capped

    def test_jitter_is_deterministic_and_bounded(self):
        p = RetryPolicy(max_attempts=2, backoff=1.0, jitter=0.5, seed=7)
        d1 = p.delay("task-x", 1)
        d2 = p.delay("task-x", 1)
        assert d1 == d2
        assert 0.5 <= d1 <= 1.5
        assert p.delay("task-y", 1) != d1

    def test_only_infrastructure_outcomes_retryable_by_default(self):
        p = RetryPolicy(max_attempts=3)
        assert p.should_retry(TaskOutcome.TIMEOUT, 1)
        assert p.should_retry(TaskOutcome.WORKER_DIED, 2)
        assert not p.should_retry(TaskOutcome.SIM_CRASH, 1)
        assert not p.should_retry(TaskOutcome.SIM_HANG, 1)
        assert not p.should_retry(TaskOutcome.INFRA_ERROR, 1)
        assert not p.should_retry(TaskOutcome.TIMEOUT, 3)  # attempts exhausted


class TestProcessIsolation:
    """End-to-end behaviour of spawn-isolated workers.

    Each executor run pays worker start-up (~1s of interpreter spawn), so
    these tests batch what they can into shared runs.
    """

    def test_taxonomy_matches_inline(self):
        results = Executor(dispatch, jobs=2).run(TAXONOMY_TASKS)
        assert {k: r.outcome for k, r in results.items()} == EXPECTED_OUTCOMES
        assert results["t/ok"].value == 42

    def test_timeout_kills_worker_and_campaign_continues(self):
        results = Executor(dispatch, jobs=2, timeout=1.0).run(
            [Task("slow", ("sleep", 60)), Task("fast", ("ok", 1))]
        )
        assert results["slow"].outcome == TaskOutcome.TIMEOUT
        assert results["slow"].error.startswith("killed after")
        assert results["fast"].outcome == TaskOutcome.OK

    def test_worker_death_is_reported_not_raised(self):
        results = Executor(dispatch, jobs=1).run(
            [Task("dead", ("die", 9)), Task("alive", ("ok", 5))]
        )
        assert results["dead"].outcome == TaskOutcome.WORKER_DIED
        assert results["alive"].value == 10

    def test_retry_after_worker_death_succeeds(self, tmp_path):
        marker = tmp_path / "marker"
        results = Executor(
            dispatch, jobs=1, retry=RetryPolicy(max_attempts=3)
        ).run([Task("flaky", ("flaky", str(marker)))])
        assert results["flaky"].outcome == TaskOutcome.OK
        assert results["flaky"].value == "recovered"
        assert results["flaky"].attempts == 2

    def test_timeout_exhausts_retries_gracefully(self):
        results = Executor(
            dispatch, jobs=1, timeout=0.5,
            retry=RetryPolicy(max_attempts=2),
        ).run([Task("slow", ("sleep", 60))])
        assert results["slow"].outcome == TaskOutcome.TIMEOUT
        assert results["slow"].attempts == 2


class TestTaskResultRecord:
    def test_round_trip(self):
        r = TaskResult("t", TaskOutcome.OK, value={"a": 1}, attempts=2,
                       duration=0.5)
        assert TaskResult.from_record(r.to_record()) == r
