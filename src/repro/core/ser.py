"""Raw fault rates and soft-error-rate (SER) aggregation (Sec. IV-E).

The paper combines MB-AVFs with per-fault-mode raw fault rates from
accelerated testing (Ibe et al. [17]) to obtain soft error rates:

    SER_H = sum over fault modes m of  FIT_m * MB-AVF_{H,m}        (eq. 3)

This module ships the paper's rate tables and the aggregation helpers.

.. note::
   The per-width percentages of Table I are only partially legible in the
   source text of the paper; the values here are a documented reconstruction
   that preserves every stated anchor (0.5% total multi-bit at 180nm, 3.9%
   at 22nm, 3.6% along-wordline at 22nm, 0.1% of strikes wider than 8 bits
   at 22nm) and the monotone rate-vs-node and rate-vs-width trends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Tuple

__all__ = [
    "TABLE_I",
    "TABLE_III",
    "fault_mode_fractions",
    "StructureSer",
    "soft_error_rate",
    "chip_ser",
]


#: Percent of all SRAM transient faults that are multi-bit, by bit width of
#: the fault, per technology node (reconstruction of Ibe et al., Table I of
#: the paper).  Key: design rule in nm.  Value: {fault width: percent}.
#: The single-bit share is ``100 - sum(values)``.
TABLE_I: Dict[int, Dict[int, float]] = {
    180: {2: 0.5},
    130: {2: 0.9, 3: 0.1},
    90: {2: 1.2, 3: 0.2, 4: 0.1},
    65: {2: 1.5, 3: 0.3, 4: 0.15, 5: 0.05},
    45: {2: 1.9, 3: 0.4, 4: 0.2, 5: 0.06, 6: 0.03, 8: 0.01},
    32: {2: 2.2, 3: 0.45, 4: 0.3, 5: 0.1, 6: 0.06, 7: 0.02, 8: 0.07},
    22: {2: 2.5, 3: 0.5, 4: 0.4, 5: 0.15, 6: 0.1, 7: 0.05, 8: 0.1, 9: 0.1},
}


#: Raw fault rate per fault mode used in the Sec. VIII case study
#: (paper Table III): a total rate of 100, split across 1x1..8x1 per the
#: 22nm data, with faults wider than 8 bits folded into the 8x1 mode.
TABLE_III: Dict[str, float] = {
    "1x1": 96.1,
    "2x1": 2.5,
    "3x1": 0.5,
    "4x1": 0.4,
    "5x1": 0.15,
    "6x1": 0.1,
    "7x1": 0.05,
    "8x1": 0.2,
}

assert abs(sum(TABLE_III.values()) - 100.0) < 1e-9


def fault_mode_fractions(node_nm: int, max_width: int = 8) -> Dict[str, float]:
    """Per-mode fault fractions (summing to 1) for a technology node.

    Widths beyond ``max_width`` are folded into the ``max_width`` mode, as in
    the paper's case study.
    """
    if node_nm not in TABLE_I:
        raise KeyError(f"no data for {node_nm}nm; have {sorted(TABLE_I)}")
    widths = TABLE_I[node_nm]
    out: Dict[str, float] = {}
    multi = 0.0
    for w, pct in widths.items():
        w_eff = min(w, max_width)
        out[f"{w_eff}x1"] = out.get(f"{w_eff}x1", 0.0) + pct / 100.0
        multi += pct / 100.0
    out["1x1"] = 1.0 - multi
    return out


@dataclass(frozen=True)
class StructureSer:
    """SER breakdown of one structure (FIT, or any rate unit you feed in)."""

    structure: str
    due_fit: float
    sdc_fit: float

    @property
    def total_fit(self) -> float:
        return self.due_fit + self.sdc_fit


def soft_error_rate(
    fit_by_mode: Mapping[str, float],
    avf_by_mode: Mapping[str, Tuple[float, float]],
    structure: str = "structure",
) -> StructureSer:
    """Combine raw per-mode fault rates with per-mode (DUE, SDC) AVFs (eq. 3).

    ``fit_by_mode`` maps mode names (e.g. ``"2x1"``) to raw fault rates;
    ``avf_by_mode`` maps the same names to ``(due_avf, sdc_avf)`` pairs.
    Modes present in only one of the two mappings are an error: silently
    dropping a mode would silently underestimate the SER.
    """
    if set(fit_by_mode) != set(avf_by_mode):
        missing = set(fit_by_mode) ^ set(avf_by_mode)
        raise ValueError(f"fault-mode mismatch between rates and AVFs: {missing}")
    due = 0.0
    sdc = 0.0
    for mode, fit in fit_by_mode.items():
        d, s = avf_by_mode[mode]
        due += fit * d
        sdc += fit * s
    return StructureSer(structure, due, sdc)


def chip_ser(structures: Iterable[StructureSer]) -> StructureSer:
    """Aggregate per-structure SERs into a chip-level SER."""
    due = sdc = 0.0
    for s in structures:
        due += s.due_fit
        sdc += s.sdc_fit
    return StructureSer("chip", due, sdc)
