"""``repro.report`` — figures and dashboards from the results store.

Two faces over one renderer:

* :func:`build_report` writes a byte-stable static ``index.html``
  reproducing the paper's Figure 2 MTTF table and the Sec. VIII
  protection comparison purely from stored rows (``repro report build``).
* :class:`ReportService` serves the same page live over HTTP with a
  small JSON query API (``repro report serve``).
"""

from .html import build_report, render_index
from .service import ReportService

__all__ = ["ReportService", "build_report", "render_index"]
