"""Figure 11: protecting the GPU vector register file (Sec. VIII).

Combines per-fault-mode VGPR MB-AVFs with the Table III raw fault rates
into SDC soft error rates for six design points: parity or SEC-DED ECC with
intra-thread (rx) or inter-thread (tx) x2/x4 interleaving — plus the
"SB-AVF approximation" a designer without MB-AVF analysis would use.

Shape targets: MB-AVF analysis yields lower SDC estimates than the SB-AVF
approximation; inter-thread beats intra-thread interleaving (simultaneous
reads convert SDCs into DUEs); parity tx4 achieves the lowest SDC of all —
far below SEC-DED rx2 despite 7x less area (paper: 86% lower).
"""

import math

import pytest

from repro.core import (
    TABLE_III,
    FaultMode,
    Interleaving,
    NoProtection,
    Parity,
    SecDed,
    soft_error_rate,
)

WORKLOADS = ("matmul", "transpose", "histogram", "dct", "reduction")
DESIGNS = [
    ("parity rx2", Parity(), Interleaving.INTRA_THREAD, 2),
    ("parity rx4", Parity(), Interleaving.INTRA_THREAD, 4),
    ("parity tx2", Parity(), Interleaving.INTER_THREAD, 2),
    ("parity tx4", Parity(), Interleaving.INTER_THREAD, 4),
    ("secded rx2", SecDed(), Interleaving.INTRA_THREAD, 2),
    ("secded tx2", SecDed(), Interleaving.INTER_THREAD, 2),
]
MODES = sorted(int(m.split("x")[0]) for m in TABLE_III)


def _sb_approx_ser(study, scheme, factor):
    """What a designer estimates with only single-bit AVF in hand.

    Every fault mode's AVF is approximated by the single-bit ACE fraction;
    the scheme reaction is derived from the worst per-word flip count
    (ceil(M / interleave)).
    """
    sb = study.vgpr_avf(FaultMode.linear(1), NoProtection()).sdc_avf
    avf_by_mode = {}
    for m in MODES:
        per_word = math.ceil(m / factor)
        reaction = scheme.react(per_word)
        name = reaction.value
        if name in ("undetected", "miscorrected"):
            avf_by_mode[f"{m}x1"] = (0.0, sb)
        elif name == "detected":
            avf_by_mode[f"{m}x1"] = (sb, 0.0)
        else:
            avf_by_mode[f"{m}x1"] = (0.0, 0.0)
    return soft_error_rate(TABLE_III, avf_by_mode, "vgpr")


def _measure(study_of):
    studies = [study_of(wl) for wl in WORKLOADS]
    table = {}
    for label, scheme, style, factor in DESIGNS:
        sdc = due = approx_sdc = 0.0
        for study in studies:
            avf_by_mode = {}
            for m in MODES:
                res = study.vgpr_avf(
                    FaultMode.linear(m), scheme, style=style, factor=factor
                )
                avf_by_mode[f"{m}x1"] = (res.due_avf, res.sdc_avf)
            ser = soft_error_rate(TABLE_III, avf_by_mode, "vgpr")
            sdc += ser.sdc_fit / len(studies)
            due += ser.due_fit / len(studies)
            approx_sdc += _sb_approx_ser(study, scheme, factor).sdc_fit / len(
                studies
            )
        table[label] = (scheme.area_overhead(32), sdc, due, approx_sdc)
    return table


@pytest.mark.benchmark(group="figure11")
def test_figure11_vgpr_case_study(benchmark, study_of, report):
    table = benchmark.pedantic(_measure, args=(study_of,), rounds=1, iterations=1)
    lines = [
        f"{'design':<12} {'area':>7} {'SDC (MB)':>10} {'DUE (MB)':>10} {'SDC (SB approx)':>16}"
    ]
    for label, (area, sdc, due, approx) in table.items():
        lines.append(
            f"{label:<12} {area:6.1%} {sdc:10.4f} {due:10.4f} {approx:16.4f}"
        )
    best = min(table, key=lambda k: table[k][1])
    reduction = 1 - table["parity tx4"][1] / table["secded rx2"][1] if (
        table["secded rx2"][1] > 0
    ) else float("nan")
    lines.append(f"lowest SDC design: {best}")
    lines.append(
        f"parity tx4 vs secded rx2 SDC reduction: {reduction:.0%} (paper: 86%)"
    )
    report("figure11_vgpr_case_study", lines)

    # Shape target 1: inter-thread interleaving beats intra-thread for the
    # same scheme and factor (SDC converted to DUE by simultaneous reads).
    assert table["parity tx2"][1] <= table["parity rx2"][1] + 1e-9
    assert table["parity tx4"][1] <= table["parity rx4"][1] + 1e-9
    assert table["secded tx2"][1] <= table["secded rx2"][1] + 1e-9
    # Shape target 2: parity tx4 has the lowest SDC of all designs (and in
    # particular far below SEC-DED rx2, the paper's 86% headline).
    assert best == "parity tx4"
    assert table["parity tx4"][1] < 0.6 * table["secded rx2"][1]
    # Shape target 3 (two sides of the same coin, both from the paper):
    # (a) where simultaneous reads convert SDC to DUE (inter-thread), the
    #     MB-AVF SDC estimate drops below the SB approximation (Fig. 11);
    # (b) without that conversion (intra-thread) the union effect makes the
    #     SB approximation an *underestimate* — the Sec. IV-D warning that
    #     SB-AVF can understate multi-bit SER by up to Mx.
    for label in ("parity tx2", "parity tx4", "secded tx2"):
        _, sdc, _, approx = table[label]
        assert sdc <= approx + 1e-9, label
    _, sdc_rx2, _, approx_rx2 = table["parity rx2"]
    assert sdc_rx2 > approx_rx2
