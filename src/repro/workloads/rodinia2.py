"""Additional Rodinia-style workloads: backprop, kmeans, pathfinder, nw.

These widen the access-pattern spectrum of the evaluation set: dense
matrix-vector with a nonlinearity (backprop), data-dependent gather +
masked reductions (kmeans), row-sequential dynamic programming
(pathfinder), and anti-diagonal wavefront dynamic programming (nw).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..arch.gpu import Apu
from ..arch.isa import ProgramBuilder, fimm, imm, s, v
from ..arch.memory import GlobalMemory
from .base import Workload
from .util import addr_of, addr_of_tid

__all__ = ["Backprop", "KMeans", "Pathfinder", "NeedlemanWunsch"]


class Backprop(Workload):
    """Two-layer neural net forward pass + outer-product weight update."""

    name = "backprop"
    outputs = ("hidden", "w1")
    N_IN = 32
    N_HID = 16
    ETA = 0.25

    def setup(self, mem: GlobalMemory) -> None:
        self.x = (self.rng.random(self.N_IN, dtype=np.float32) - 0.5).astype(
            np.float32
        )
        self.w = (
            self.rng.random((self.N_IN, self.N_HID), dtype=np.float32) - 0.5
        ).astype(np.float32)
        self.err = (self.rng.random(self.N_HID, dtype=np.float32) - 0.5).astype(
            np.float32
        )
        self.base_x = mem.alloc("x", self.N_IN * 4)
        self.base_w = mem.alloc("w1", self.N_IN * self.N_HID * 4)
        self.base_h = mem.alloc("hidden", self.N_HID * 4)
        self.base_e = mem.alloc("err", self.N_HID * 4)
        mem.view_f32("x")[:] = self.x
        mem.view_f32("w1")[:] = self.w.ravel()
        mem.view_f32("err")[:] = self.err

    def _forward_kernel(self) -> ProgramBuilder:
        # hidden[j] = sigmoid(sum_i x[i] * w[i][j]); thread j.
        p = ProgramBuilder()
        p.mov(v(2), fimm(0.0))
        p.s_mov(s(10), imm(0))
        p.label("i")
        p.mov(v(3), s(10))
        addr_of(p, s(2), v(3), v(4))
        p.load(v(5), v(4))                 # x[i]
        p.s_imul(s(11), s(10), imm(self.N_HID))
        p.iadd(v(6), v(0), s(11))          # i*N_HID + j
        addr_of(p, s(3), v(6), v(7))
        p.load(v(8), v(7))                 # w[i][j]
        p.fmac(v(2), v(5), v(8))
        p.s_iadd(s(10), s(10), imm(1))
        p.s_cmp("lt", s(10), imm(self.N_IN))
        p.cbranch("i")
        # sigmoid(a) = 1 / (1 + exp(-a))
        p.fsub(v(9), fimm(0.0), v(2))
        p.fexp(v(9), v(9))
        p.fadd(v(9), v(9), fimm(1.0))
        p.frcp(v(10), v(9))
        addr_of_tid(p, s(4), v(11))
        p.store(v(10), v(11))
        return p

    def _update_kernel(self) -> ProgramBuilder:
        # w[i][j] += eta * x[i] * err[j]; thread = i*N_HID + j.
        p = ProgramBuilder()
        p.shr(v(2), v(0), imm(4))          # i  (N_HID = 16)
        p.iand(v(3), v(0), imm(15))        # j
        addr_of(p, s(2), v(2), v(4))
        p.load(v(5), v(4))                 # x[i]
        addr_of(p, s(3), v(3), v(6))
        p.load(v(7), v(6))                 # err[j]
        p.fmul(v(8), v(5), v(7))
        addr_of_tid(p, s(4), v(9))
        p.load(v(10), v(9))                # w[i][j]
        p.fmac(v(10), v(8), fimm(self.ETA))
        p.store(v(10), v(9))
        return p

    def launch(self, apu: Apu) -> None:
        apu.launch(
            self._forward_kernel().build(), self.N_HID,
            [self.base_x, self.base_w, self.base_h],
            name=f"{self.name}.forward",
        )
        apu.launch(
            self._update_kernel().build(), self.N_IN * self.N_HID,
            [self.base_x, self.base_e, self.base_w],
            name=f"{self.name}.update",
        )

    def expected(self) -> Dict[str, np.ndarray]:
        one = np.float32(1.0)
        acc = np.zeros(self.N_HID, dtype=np.float32)
        for i in range(self.N_IN):
            acc = acc + self.x[i] * self.w[i]
        hidden = one / (np.exp(-acc).astype(np.float32) + one)
        w = self.w + (self.x[:, None] * self.err[None, :]) * np.float32(self.ETA)
        return {"hidden": hidden.astype(np.float32), "w1": w.astype(np.float32)}


class KMeans(Workload):
    """K-means: assignment + masked-reduction centroid update (2 iterations)."""

    name = "kmeans"
    outputs = ("assign", "cx", "cy")
    N = 128
    K = 4
    ITERS = 2

    def setup(self, mem: GlobalMemory) -> None:
        self.px = (self.rng.random(self.N, dtype=np.float32) * 10).astype(np.float32)
        self.py = (self.rng.random(self.N, dtype=np.float32) * 10).astype(np.float32)
        self.cx0 = self.px[: self.K].copy()
        self.cy0 = self.py[: self.K].copy()
        self.base_px = mem.alloc("px", self.N * 4)
        self.base_py = mem.alloc("py", self.N * 4)
        self.base_cx = mem.alloc("cx", 16 * 4)
        self.base_cy = mem.alloc("cy", 16 * 4)
        self.base_assign = mem.alloc("assign", self.N * 4)
        mem.view_f32("px")[:] = self.px
        mem.view_f32("py")[:] = self.py
        mem.view_f32("cx")[: self.K] = self.cx0
        mem.view_f32("cy")[: self.K] = self.cy0

    def _assign_kernel(self) -> ProgramBuilder:
        # assign[t] = argmin_k dist2(point t, centroid k)
        p = ProgramBuilder()
        addr_of_tid(p, s(2), v(2))
        p.load(v(3), v(2))                 # px
        addr_of_tid(p, s(3), v(2))
        p.load(v(4), v(2))                 # py
        p.mov(v(5), fimm(1e30))            # best distance
        p.mov(v(6), imm(0))                # best k
        p.s_mov(s(10), imm(0))
        p.label("k")
        p.mov(v(7), s(10))
        addr_of(p, s(4), v(7), v(8))
        p.load(v(9), v(8))                 # cx[k]
        addr_of(p, s(5), v(7), v(8))
        p.load(v(10), v(8))                # cy[k]
        p.fsub(v(9), v(9), v(3))
        p.fsub(v(10), v(10), v(4))
        p.fmul(v(11), v(9), v(9))
        p.fmac(v(11), v(10), v(10))        # dist2
        p.fcmp("lt", v(11), v(5))
        p.cndmask(v(5), v(11), v(5))
        p.cndmask(v(6), v(7), v(6))
        p.s_iadd(s(10), s(10), imm(1))
        p.s_cmp("lt", s(10), imm(self.K))
        p.cbranch("k")
        addr_of_tid(p, s(6), v(12))
        p.store(v(6), v(12))
        return p

    def _update_kernel(self) -> ProgramBuilder:
        # Thread k < K: centroid k = mean of its points (sequential scan).
        p = ProgramBuilder()
        p.cmp("lt", v(0), imm(self.K))
        p.mov(v(2), fimm(0.0))             # sum x
        p.mov(v(3), fimm(0.0))             # sum y
        p.mov(v(4), fimm(0.0))             # count
        p.s_mov(s(10), imm(0))
        p.label("pt")
        p.mov(v(5), s(10))
        addr_of(p, s(6), v(5), v(6))
        p.load(v(7), v(6))                 # assign[i]
        addr_of(p, s(2), v(5), v(6))
        p.load(v(8), v(6))                 # px[i]
        addr_of(p, s(3), v(5), v(6))
        p.load(v(9), v(6))                 # py[i]
        p.cmp("eq", v(7), v(0))            # mine?
        p.cndmask(v(10), v(8), fimm(0.0))
        p.fadd(v(2), v(2), v(10))
        p.cndmask(v(10), v(9), fimm(0.0))
        p.fadd(v(3), v(3), v(10))
        p.cndmask(v(10), fimm(1.0), fimm(0.0))
        p.fadd(v(4), v(4), v(10))
        p.s_iadd(s(10), s(10), imm(1))
        p.s_cmp("lt", s(10), imm(self.N))
        p.cbranch("pt")
        p.fmax(v(4), v(4), fimm(1.0))      # avoid empty-cluster divide
        p.frcp(v(11), v(4))
        p.fmul(v(2), v(2), v(11))
        p.fmul(v(3), v(3), v(11))
        p.cmp("lt", v(0), imm(self.K))
        addr_of_tid(p, s(4), v(12))
        p.store(v(2), v(12), pred=True)
        addr_of_tid(p, s(5), v(12))
        p.store(v(3), v(12), pred=True)
        return p

    def launch(self, apu: Apu) -> None:
        args = [
            self.base_px, self.base_py, self.base_cx, self.base_cy,
        ]
        assign = self._assign_kernel().build()
        update = self._update_kernel().build()
        for it in range(self.ITERS):
            apu.launch(
                assign, self.N,
                [self.base_px, self.base_py, self.base_cx, self.base_cy,
                 self.base_assign],
                name=f"{self.name}.assign{it}",
            )
            apu.launch(
                update, 16,
                [self.base_px, self.base_py, self.base_cx, self.base_cy,
                 self.base_assign],
                name=f"{self.name}.update{it}",
            )

    def expected(self) -> Dict[str, np.ndarray]:
        one, zero = np.float32(1.0), np.float32(0.0)
        cx, cy = self.cx0.copy(), self.cy0.copy()
        assign = np.zeros(self.N, dtype=np.uint32)
        for _ in range(self.ITERS):
            best = np.full(self.N, np.float32(1e30))
            assign = np.zeros(self.N, dtype=np.uint32)
            for k in range(self.K):
                dx = cx[k] - self.px
                dy = cy[k] - self.py
                d2 = dx * dx + dy * dy
                better = d2 < best
                best = np.where(better, d2, best)
                assign = np.where(better, np.uint32(k), assign)
            ncx, ncy = cx.copy(), cy.copy()
            for k in range(self.K):
                sx = sy = cnt = zero
                for i in range(self.N):
                    mine = assign[i] == k
                    sx = sx + (self.px[i] if mine else zero)
                    sy = sy + (self.py[i] if mine else zero)
                    cnt = cnt + (one if mine else zero)
                cnt = max(cnt, one)
                inv = one / np.float32(cnt)
                ncx[k], ncy[k] = sx * inv, sy * inv
            cx, cy = ncx, ncy
        cx16 = np.zeros(16, dtype=np.float32)
        cy16 = np.zeros(16, dtype=np.float32)
        cx16[: self.K], cy16[: self.K] = cx, cy
        return {"assign": assign, "cx": cx16, "cy": cy16}


class Pathfinder(Workload):
    """Row-by-row dynamic programming over a 16x32 cost grid."""

    name = "pathfinder"
    outputs = ("dst",)
    ROWS = 16
    COLS = 32

    def setup(self, mem: GlobalMemory) -> None:
        self.grid = self.rng.integers(
            0, 10, (self.ROWS, self.COLS), dtype=np.uint32
        )
        self.base_data = mem.alloc("data", self.ROWS * self.COLS * 4)
        self.base_src = mem.alloc("src", self.COLS * 4)
        self.base_dst = mem.alloc("dst", self.COLS * 4)
        mem.view_u32("data")[:] = self.grid.ravel()
        mem.view_u32("src")[:] = self.grid[0]

    def _step_kernel(self) -> ProgramBuilder:
        # dst[j] = data[row][j] + min(src[j-1], src[j], src[j+1]); args:
        # s2=data row base, s3=src, s4=dst
        p = ProgramBuilder()
        jmax = self.COLS - 1
        p.isub(v(2), v(0), imm(1))
        p.imax(v(2), v(2), imm(0))         # j-1 clamped
        p.iadd(v(3), v(0), imm(1))
        p.imin(v(3), v(3), imm(jmax))      # j+1 clamped
        addr_of(p, s(3), v(2), v(4))
        p.load(v(5), v(4))                 # src[j-1]
        addr_of_tid(p, s(3), v(4))
        p.load(v(6), v(4))                 # src[j]
        addr_of(p, s(3), v(3), v(4))
        p.load(v(7), v(4))                 # src[j+1]
        p.imin(v(5), v(5), v(6))
        p.imin(v(5), v(5), v(7))
        addr_of_tid(p, s(2), v(8))
        p.load(v(9), v(8))                 # data[row][j]
        p.iadd(v(9), v(9), v(5))
        addr_of_tid(p, s(4), v(10))
        p.store(v(9), v(10))
        return p

    def launch(self, apu: Apu) -> None:
        prog = self._step_kernel().build()
        src, dst = self.base_src, self.base_dst
        for row in range(1, self.ROWS):
            apu.launch(
                prog, self.COLS,
                [self.base_data + row * self.COLS * 4, src, dst],
                name=f"{self.name}.row{row}",
            )
            src, dst = dst, src
        self.final_in_src = src

    def expected(self) -> Dict[str, np.ndarray]:
        cur = self.grid[0].astype(np.int64)
        for row in range(1, self.ROWS):
            left = np.empty_like(cur)
            left[0], left[1:] = cur[0], cur[:-1]
            right = np.empty_like(cur)
            right[-1], right[:-1] = cur[-1], cur[1:]
            cur = self.grid[row] + np.minimum(np.minimum(left, cur), right)
        # ROWS-1 = 15 steps: result lands in 'dst' after odd step counts.
        return {"dst": cur.astype(np.uint32)}


class NeedlemanWunsch(Workload):
    """Anti-diagonal wavefront DP (sequence alignment scores), 16x16."""

    name = "nw"
    outputs = ("score",)
    N = 16
    PENALTY = 2

    def setup(self, mem: GlobalMemory) -> None:
        n = self.N
        self.seq_a = self.rng.integers(0, 4, n, dtype=np.uint32)
        self.seq_b = self.rng.integers(0, 4, n, dtype=np.uint32)
        self.base_a = mem.alloc("seqa", n * 4)
        self.base_b = mem.alloc("seqb", n * 4)
        # Score matrix (n+1)x(n+1), host-initialised boundary.
        self.dim = n + 1
        self.base_s = mem.alloc("score", self.dim * self.dim * 4)
        mem.view_u32("seqa")[:] = self.seq_a
        mem.view_u32("seqb")[:] = self.seq_b
        sm = mem.view_i32("score").reshape(self.dim, self.dim)
        sm[0, :] = -self.PENALTY * np.arange(self.dim)
        sm[:, 0] = -self.PENALTY * np.arange(self.dim)

    def _diag_kernel(self) -> ProgramBuilder:
        # Thread t handles cell (i=t+1, j=d-t) of diagonal d (arg s4),
        # active while 1 <= j <= N.
        p = ProgramBuilder()
        dimlog = 0
        while (1 << dimlog) < self.dim:
            dimlog += 1
        # We index the score matrix with i*dim + j computed via multiply
        # (dim = 17 is not a power of two).
        p.iadd(v(2), v(0), imm(1))         # i
        p.mov(v(3), s(4))
        p.isub(v(3), v(3), v(0))           # j = d - t (>= 1 by launch size)
        p.mov(v(4), v(3))
        p.imax(v(4), v(4), imm(1))
        p.imin(v(4), v(4), imm(self.N))    # clamped j for safe addressing
        # match score: a[i-1] == b[j-1] ? +1 : -1
        addr_of(p, s(2), v(0), v(5))
        p.load(v(6), v(5))                 # seq_a[i-1]
        p.isub(v(7), v(4), imm(1))
        addr_of(p, s(3), v(7), v(5))
        p.load(v(8), v(5))                 # seq_b[j-1]
        p.imul(v(9), v(2), imm(self.dim))
        p.iadd(v(10), v(9), v(4))          # i*dim + j
        p.isub(v(11), v(10), imm(self.dim + 1))  # (i-1, j-1)
        addr_of(p, s(5), v(11), v(5))
        p.load(v(12), v(5))                # diag
        p.isub(v(11), v(10), imm(self.dim))      # (i-1, j)
        addr_of(p, s(5), v(11), v(5))
        p.load(v(13), v(5))                # up
        p.isub(v(11), v(10), imm(1))             # (i, j-1)
        addr_of(p, s(5), v(11), v(5))
        p.load(v(14), v(5))                # left
        p.cmp("eq", v(6), v(8))
        p.cndmask(v(15), imm(1), imm(-1 & 0xFFFFFFFF))
        p.iadd(v(12), v(12), v(15))        # diag + match
        p.isub(v(13), v(13), imm(self.PENALTY))
        p.isub(v(14), v(14), imm(self.PENALTY))
        p.imax(v(12), v(12), v(13))
        p.imax(v(12), v(12), v(14))
        # Store only where j <= N (threads past the diagonal end are idle;
        # j >= 1 holds by construction of the launch size).
        p.cmp("le", v(3), imm(self.N))
        addr_of(p, s(5), v(10), v(16))
        p.store(v(12), v(16), pred=True)
        return p

    def launch(self, apu: Apu) -> None:
        prog = self._diag_kernel().build()
        for d in range(1, 2 * self.N):
            # Threads t with i=t+1 in range; predication handles j bounds.
            n_threads = min(self.N, d)
            apu.launch(
                prog, n_threads,
                [self.base_a, self.base_b, d, self.base_s],
                name=f"{self.name}.d{d}",
            )

    def expected(self) -> Dict[str, np.ndarray]:
        n, dim = self.N, self.dim
        sm = np.zeros((dim, dim), dtype=np.int64)
        sm[0, :] = -self.PENALTY * np.arange(dim)
        sm[:, 0] = -self.PENALTY * np.arange(dim)
        for i in range(1, dim):
            for j in range(1, dim):
                match = 1 if self.seq_a[i - 1] == self.seq_b[j - 1] else -1
                sm[i, j] = max(
                    sm[i - 1, j - 1] + match,
                    sm[i - 1, j] - self.PENALTY,
                    sm[i, j - 1] - self.PENALTY,
                )
        return {"score": (sm & 0xFFFFFFFF).astype(np.uint32)}
