"""Whole-program project index: per-file symbol summaries.

The per-file rules see one :class:`~repro.staticcheck.findings.Module`
at a time; the C-family concurrency rules need to know what *every*
file declares — which classes exist, which attributes they carry, which
of those are ``threading`` locks, which methods run on which threads,
and who calls whom.  This module builds that knowledge as one
:class:`FileSummary` per file plus a :class:`ProjectIndex` over all of
them.

Summaries are deliberately **plain JSON data** (no AST nodes), for two
reasons:

* the incremental cache (:mod:`repro.staticcheck.cache`) persists them
  keyed by content hash, so an unchanged file contributes to the index
  without being re-parsed; and
* the whole-program rules consume summaries only, so they work
  identically on a cold parse and a warm cache hit.

Two tiny sub-languages encode cross-file references:

* a **type expression** (``texpr``) names the static type of an
  expression: ``["self"]`` (instance of the enclosing class),
  ``["name", "FabricCoordinator"]``, ``["attr", T, "guard"]`` (the type
  of attribute ``guard`` on ``T``), ``["ret", C]`` (the return type of
  call ``C``) and ``["elem", T]`` (the value type of a subscripted
  container).
* a **call expression** (``cexpr``) names a call target:
  ``["dotted", "time.sleep"]`` for import-resolved dotted calls and
  ``["method", T, "inc"]`` for method calls on a typed receiver.

Resolution of both happens in :mod:`repro.staticcheck.callgraph`, where
the whole index is visible.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .astutil import dotted_name, resolve
from .findings import Module

__all__ = [
    "FileSummary",
    "ClassSummary",
    "FuncSummary",
    "ProjectIndex",
    "build_summary",
    "module_name_for",
]

#: JSON-shaped type / call expressions (see module docstring)
TExpr = List[Any]
CExpr = List[Any]

#: method names whose call mutates the receiver in place
_MUTATORS = frozenset(
    {
        "append", "extend", "insert", "add", "update", "setdefault",
        "pop", "popitem", "popleft", "appendleft", "remove", "discard",
        "clear", "difference_update", "intersection_update",
        "symmetric_difference_update", "sort", "reverse",
    }
)

#: threading constructors that make an attribute a mutual-exclusion field
_LOCK_TYPES = frozenset(
    {
        "threading.Lock", "threading.RLock", "threading.Condition",
        "threading.Semaphore", "threading.BoundedSemaphore",
    }
)
#: thread-safe signalling primitives (inventoried, but not mutexes)
_EVENT_TYPES = frozenset({"threading.Event", "threading.Barrier"})

#: constructors whose ``target=`` becomes a thread entry point
_THREAD_CTORS = frozenset({"threading.Thread", "threading.Timer"})

#: base classes whose subclasses' methods all run on server threads
_HANDLER_BASES = frozenset(
    {
        "http.server.BaseHTTPRequestHandler",
        "BaseHTTPRequestHandler",
        "socketserver.BaseRequestHandler",
        "socketserver.StreamRequestHandler",
    }
)

#: names that look like locks even without a known assignment (fixture
#: and local-variable support for C602/C603)
_LOCKISH_FRAGMENTS = ("lock", "mutex", "cond")


def module_name_for(relpath: str) -> str:
    """Dotted module name of a file relative to the scan root."""
    rel = relpath.replace("\\", "/")
    if rel.endswith(".py"):
        rel = rel[: -len(".py")]
    parts = [p for p in rel.split("/") if p]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _ann_info(node: Optional[ast.expr]) -> Optional[Dict[str, Any]]:
    """``{"name": ..., "elem": ...}`` from an annotation expression.

    Unwraps ``Optional``/``Union``/``ClassVar`` and string annotations;
    records the value type of ``Dict[...]`` / element type of
    ``List``-likes as ``elem`` so subscript loads can be typed.
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            parsed = ast.parse(node.value, mode="eval")
        except SyntaxError:
            return None
        return _ann_info(parsed.body)
    if isinstance(node, ast.Name):
        return {"name": node.id, "elem": None}
    if isinstance(node, ast.Attribute):
        return {"name": node.attr, "elem": None}
    if isinstance(node, ast.Subscript):
        head = dotted_name(node.value)
        head_tail = (head or "").rpartition(".")[2]
        inner = node.slice
        items: List[ast.expr]
        if isinstance(inner, ast.Tuple):
            items = list(inner.elts)
        else:
            items = [inner]
        if head_tail in ("Optional", "Union", "ClassVar", "Final"):
            for item in items:
                info = _ann_info(item)
                if info is not None and info["name"] != "None":
                    return info
            return None
        if head_tail in ("Dict", "dict", "Mapping", "MutableMapping",
                         "DefaultDict", "OrderedDict"):
            value = _ann_info(items[1]) if len(items) > 1 else None
            return {
                "name": head_tail,
                "elem": value["name"] if value else None,
            }
        if head_tail in ("List", "list", "Set", "set", "FrozenSet",
                         "frozenset", "Deque", "deque", "Sequence",
                         "Iterable", "Iterator", "Tuple", "tuple"):
            elem = _ann_info(items[0]) if items else None
            return {
                "name": head_tail,
                "elem": elem["name"] if elem else None,
            }
        base = _ann_info(node.value)
        return base
    return None


@dataclass
class FuncSummary:
    """Everything the whole-program rules need about one function."""

    name: str
    line: int = 0
    #: parameter names paired with their annotated type name (or None)
    params: List[Tuple[str, Optional[str]]] = field(default_factory=list)
    #: annotated return type info ({"name", "elem"}) or None
    returns: Optional[Dict[str, Any]] = None
    #: call sites: target cexpr + context the rules ask about
    calls: List[Dict[str, Any]] = field(default_factory=list)
    #: attribute mutations (owner texpr, attr, how, locks held, ...)
    writes: List[Dict[str, Any]] = field(default_factory=list)
    #: first read site per directly-read ``self.<attr>``
    reads: Dict[str, List[Any]] = field(default_factory=dict)
    #: explicit ``<lock>.acquire()`` sites (C602)
    acquires: List[Dict[str, Any]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "line": self.line,
            "params": [list(p) for p in self.params],
            "returns": self.returns,
            "calls": self.calls,
            "writes": self.writes,
            "reads": self.reads,
            "acquires": self.acquires,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FuncSummary":
        return cls(
            name=data["name"],
            line=data["line"],
            params=[(p[0], p[1]) for p in data["params"]],
            returns=data["returns"],
            calls=data["calls"],
            writes=data["writes"],
            reads=data["reads"],
            acquires=data["acquires"],
        )


@dataclass
class ClassSummary:
    """One class: bases, attribute inventory, lock fields, methods."""

    name: str
    line: int = 0
    #: import-resolved dotted base-class names
    bases: List[str] = field(default_factory=list)
    #: instance attributes ever assigned through ``self.<attr>``
    attrs: List[str] = field(default_factory=list)
    #: attributes assigned a ``threading`` mutex (Lock/RLock/Condition/...)
    locks: List[str] = field(default_factory=list)
    #: attributes assigned a thread-safe signal (Event/Barrier)
    events: List[str] = field(default_factory=list)
    #: attribute -> {"name": type, "elem": value type} from annotations
    #: or constructor assignments
    attr_types: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    methods: Dict[str, FuncSummary] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "line": self.line,
            "bases": self.bases,
            "attrs": self.attrs,
            "locks": self.locks,
            "events": self.events,
            "attr_types": self.attr_types,
            "methods": {
                name: m.to_dict() for name, m in self.methods.items()
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ClassSummary":
        return cls(
            name=data["name"],
            line=data["line"],
            bases=data["bases"],
            attrs=data["attrs"],
            locks=data["locks"],
            events=data["events"],
            attr_types=data["attr_types"],
            methods={
                name: FuncSummary.from_dict(m)
                for name, m in data["methods"].items()
            },
        )


@dataclass
class FileSummary:
    """The whole-program-relevant content of one source file."""

    relpath: str
    module: str
    scopes: List[str] = field(default_factory=list)
    #: line -> suppressed codes (None = every rule), JSON-safe copy of
    #: the Module's pragma table so cached files keep suppressing
    suppressions: Dict[int, Optional[List[str]]] = field(
        default_factory=dict
    )
    #: absolute (scan-root-relative) dotted names this module imports
    imports: List[str] = field(default_factory=list)
    #: metric registration sites: [name, kind, line, col, snippet]
    metric_sites: List[List[Any]] = field(default_factory=list)
    classes: Dict[str, ClassSummary] = field(default_factory=dict)
    functions: Dict[str, FuncSummary] = field(default_factory=dict)
    #: ``threading.Thread(target=...)`` sites: ``{"t": cexpr, "cls": name}``
    #: where ``cls`` is the class whose method created the thread
    thread_targets: List[Dict[str, Any]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "relpath": self.relpath,
            "module": self.module,
            "scopes": self.scopes,
            "suppressions": {
                str(line): codes
                for line, codes in self.suppressions.items()
            },
            "imports": self.imports,
            "metric_sites": self.metric_sites,
            "classes": {
                name: c.to_dict() for name, c in self.classes.items()
            },
            "functions": {
                name: f.to_dict() for name, f in self.functions.items()
            },
            "thread_targets": self.thread_targets,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FileSummary":
        return cls(
            relpath=data["relpath"],
            module=data["module"],
            scopes=data["scopes"],
            suppressions={
                int(line): codes
                for line, codes in data["suppressions"].items()
            },
            imports=data["imports"],
            metric_sites=data["metric_sites"],
            classes={
                name: ClassSummary.from_dict(c)
                for name, c in data["classes"].items()
            },
            functions={
                name: FuncSummary.from_dict(f)
                for name, f in data["functions"].items()
            },
            thread_targets=data["thread_targets"],
        )


# -- summary construction -----------------------------------------------------


class _FunctionScanner:
    """One pass over a function body: calls, writes, reads, locks held."""

    def __init__(
        self,
        builder: "_SummaryBuilder",
        func: FuncSummary,
        node: ast.AST,
        own_class: Optional[ClassSummary],
    ) -> None:
        self.b = builder
        self.func = func
        self.own_class = own_class
        #: local variable name -> texpr
        self.locals: Dict[str, TExpr] = {}
        #: textual lock names assigned threading.Lock() locally
        self.local_locks: Set[str] = set()
        args = getattr(node, "args", None)
        if args is not None:
            for arg in list(args.posonlyargs) + list(args.args) + list(
                args.kwonlyargs
            ):
                info = _ann_info(arg.annotation)
                self.func.params.append(
                    (arg.arg, info["name"] if info else None)
                )
                if info is not None:
                    self.locals[arg.arg] = ["name", info["name"]]

    # -- type/call expression inference (in-file knowledge only) ----------

    def texpr_of(self, node: ast.expr) -> Optional[TExpr]:
        if isinstance(node, ast.Name):
            if node.id == "self":
                return ["self"]
            return self.locals.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self.texpr_of(node.value)
            if base is None:
                return None
            return ["attr", base, node.attr]
        if isinstance(node, ast.Call):
            cexpr = self.cexpr_of(node)
            if cexpr is None:
                return None
            return ["ret", cexpr]
        if isinstance(node, ast.Subscript):
            base = self.texpr_of(node.value)
            if base is None:
                return None
            return ["elem", base]
        return None

    def cexpr_of(self, call: ast.Call) -> Optional[CExpr]:
        func = call.func
        if isinstance(func, ast.Name):
            if func.id in self.locals:
                return None  # calling a typed local: not resolvable
            return ["dotted", resolve(func.id, self.b.aliases)]
        if not isinstance(func, ast.Attribute):
            return None
        recv = func.value
        recv_texpr = self.texpr_of(recv)
        if recv_texpr is not None:
            return ["method", recv_texpr, func.attr]
        name = dotted_name(func)
        if name is not None:
            return ["dotted", resolve(name, self.b.aliases)]
        return None

    # -- the statement walk ------------------------------------------------

    def scan(self, body: Sequence[ast.stmt]) -> None:
        self._scan_block(body, held=())

    def _scan_block(
        self, body: Sequence[ast.stmt], held: Tuple[str, ...]
    ) -> None:
        for stmt in body:
            self._scan_stmt(stmt, held)

    def _lockish(self, text: str) -> bool:
        """Whether a textual receiver plausibly names a mutex."""
        if text in self.local_locks:
            return True
        tail = text.rpartition(".")[2].lower()
        if any(frag in tail for frag in _LOCKISH_FRAGMENTS):
            return True
        if text.startswith("self.") and self.own_class is not None:
            return text[len("self."):] in self.own_class.locks
        return False

    def _scan_stmt(self, stmt: ast.stmt, held: Tuple[str, ...]) -> None:
        if isinstance(stmt, ast.With) or isinstance(stmt, ast.AsyncWith):
            inner = held
            for item in stmt.items:
                ctx = item.context_expr
                text = dotted_name(ctx)
                if text is not None and self._lockish(text):
                    if text not in inner:
                        inner = inner + (text,)
                else:
                    self._scan_expr(ctx, held)
                if item.optional_vars is not None and isinstance(
                    item.optional_vars, ast.Name
                ):
                    texpr = self.texpr_of(ctx)
                    if texpr is not None:
                        self.locals[item.optional_vars.id] = texpr
            self._scan_block(stmt.body, inner)
            return
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested defs (closures) run on the enclosing call path for
            # our purposes; lambdas are handled by generic expr walk.
            self._scan_block(stmt.body, held)
            return
        if isinstance(stmt, ast.ClassDef):
            return  # local classes: out of scope
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            self._scan_assign(stmt, held)
            return
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self._record_write_target(target, "del", held)
                self._scan_expr(target, held)
            return
        if isinstance(stmt, (ast.If, ast.While)):
            self._scan_expr(stmt.test, held)
            self._scan_block(stmt.body, held)
            self._scan_block(stmt.orelse, held)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._scan_expr(stmt.iter, held)
            self._record_write_target(stmt.target, "assign", held)
            self._type_loop_target(stmt.target, stmt.iter)
            self._scan_block(stmt.body, held)
            self._scan_block(stmt.orelse, held)
            return
        if isinstance(stmt, ast.Try):
            self._scan_block(stmt.body, held)
            for handler in stmt.handlers:
                self._scan_block(handler.body, held)
            self._scan_block(stmt.orelse, held)
            self._scan_block(stmt.finalbody, held)
            return
        if isinstance(stmt, ast.Return) and stmt.value is not None:
            self._scan_expr(stmt.value, held)
            return
        if isinstance(stmt, ast.Expr):
            self._scan_expr(stmt.value, held)
            return
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._scan_expr(child, held)
            elif isinstance(child, ast.stmt):
                self._scan_stmt(child, held)

    def _scan_assign(self, stmt: ast.stmt, held: Tuple[str, ...]) -> None:
        value: Optional[ast.expr]
        targets: List[ast.expr]
        how = "assign"
        if isinstance(stmt, ast.Assign):
            value, targets = stmt.value, list(stmt.targets)
        elif isinstance(stmt, ast.AnnAssign):
            value, targets = stmt.value, [stmt.target]
        else:
            assert isinstance(stmt, ast.AugAssign)
            value, targets = stmt.value, [stmt.target]
            how = "aug"
        if value is not None:
            self._scan_expr(value, held)
        for target in targets:
            self._record_write_target(target, how, held)
            if isinstance(target, (ast.Attribute, ast.Subscript)):
                self._scan_expr(target.value, held)
        # local type tracking: `v = <expr>` with an inferable type
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and value is not None
        ):
            name = stmt.targets[0].id
            texpr = self.texpr_of(value)
            if texpr is not None:
                self.locals[name] = texpr
            elif name in self.locals:
                del self.locals[name]
            if isinstance(value, ast.Call):
                cname = dotted_name(value.func)
                if cname is not None and resolve(
                    cname, self.b.aliases
                ) in _LOCK_TYPES:
                    self.local_locks.add(name)
        if isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            info = _ann_info(stmt.annotation)
            if info is not None:
                self.locals[stmt.target.id] = ["name", info["name"]]

    def _type_loop_target(
        self, target: ast.expr, iter_expr: ast.expr
    ) -> None:
        """Type a loop variable from a typed container's element type.

        Covers ``for c in self._counters.values():`` (and iteration
        over the container itself) — the loop variable carries the
        container's value/element type, which is what lets writes like
        ``c.value = 0`` in a driver-side sweep join the cross-thread
        access analysis.
        """
        if not isinstance(target, ast.Name):
            return
        base = iter_expr
        if (
            isinstance(base, ast.Call)
            and isinstance(base.func, ast.Attribute)
            and base.func.attr in ("values", "keys", "items")
            and not base.args
        ):
            if base.func.attr != "values":
                return  # keys/items: element type is not the value type
            base = base.func.value
        texpr = self.texpr_of(base)
        if texpr is not None:
            self.locals[target.id] = ["elem", texpr]

    def _record_write_target(
        self, target: ast.expr, how: str, held: Tuple[str, ...]
    ) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._record_write_target(elt, how, held)
            return
        if isinstance(target, ast.Starred):
            self._record_write_target(target.value, how, held)
            return
        if isinstance(target, ast.Subscript):
            if isinstance(target.value, ast.Attribute):
                self._record_attr_write(target.value, "subscript", held)
            return
        if isinstance(target, ast.Attribute):
            self._record_attr_write(target, how, held)

    def _record_attr_write(
        self, attr_node: ast.Attribute, how: str, held: Tuple[str, ...]
    ) -> None:
        owner = self.texpr_of(attr_node.value)
        if owner is None:
            return
        self.func.writes.append(
            {
                "owner": owner,
                "attr": attr_node.attr,
                "how": how,
                "line": attr_node.lineno,
                "col": attr_node.col_offset,
                "held": list(held),
                "snippet": self.b.snippet(attr_node.lineno),
            }
        )
        if owner == ["self"] and self.own_class is not None:
            if attr_node.attr not in self.own_class.attrs:
                self.own_class.attrs.append(attr_node.attr)

    def _scan_expr(self, node: ast.expr, held: Tuple[str, ...]) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                self._record_call(sub, held)
            elif isinstance(sub, ast.Attribute) and isinstance(
                sub.ctx, ast.Load
            ):
                if (
                    isinstance(sub.value, ast.Name)
                    and sub.value.id == "self"
                    and sub.attr not in self.func.reads
                ):
                    self.func.reads[sub.attr] = [
                        sub.lineno, sub.col_offset, list(held)
                    ]

    def _record_call(self, call: ast.Call, held: Tuple[str, ...]) -> None:
        func = call.func
        recv_text: Optional[str] = None
        if isinstance(func, ast.Attribute):
            recv_text = dotted_name(func.value)
            # in-place mutation through a method call on an attribute
            if func.attr in _MUTATORS and isinstance(
                func.value, ast.Attribute
            ):
                self._record_attr_write(func.value, "call", held)
            # explicit acquire() on something lock-shaped (C602)
            if func.attr == "acquire" and recv_text is not None and (
                self._lockish(recv_text)
            ):
                self.func.acquires.append(
                    {
                        "recv": recv_text,
                        "line": call.lineno,
                        "col": call.col_offset,
                        "released": False,  # settled by the builder
                        "snippet": self.b.snippet(call.lineno),
                    }
                )
        cexpr = self.cexpr_of(call)
        if cexpr is None:
            return
        kwargs = [kw.arg for kw in call.keywords if kw.arg is not None]
        has_star_kw = any(kw.arg is None for kw in call.keywords)
        timeout = has_star_kw
        for kw in call.keywords:
            if kw.arg == "timeout" and not (
                isinstance(kw.value, ast.Constant) and kw.value.value is None
            ):
                timeout = True
        self.func.calls.append(
            {
                "t": cexpr,
                "line": call.lineno,
                "col": call.col_offset,
                "held": list(held),
                "recv": recv_text,
                "timeout": timeout,
                "kw": kwargs,
                "nargs": len(call.args),
                "snippet": self.b.snippet(call.lineno),
            }
        )
        # threading.Thread(target=...) seeds the thread-entry set
        if cexpr[0] == "dotted" and cexpr[1] in _THREAD_CTORS:
            for kw in call.keywords:
                if kw.arg == "target":
                    target_cexpr = self._entry_cexpr(kw.value)
                    if target_cexpr is not None:
                        self.b.summary.thread_targets.append(
                            {
                                "t": target_cexpr,
                                "cls": (
                                    self.own_class.name
                                    if self.own_class is not None
                                    else None
                                ),
                            }
                        )
        # metric registration sites (for the cross-file O402 rule)
        if (
            isinstance(func, ast.Attribute)
            and func.attr in ("counter", "gauge", "histogram")
            and call.args
            and isinstance(call.args[0], ast.Constant)
            and isinstance(call.args[0].value, str)
        ):
            self.b.summary.metric_sites.append(
                [
                    call.args[0].value,
                    func.attr,
                    call.lineno,
                    call.col_offset,
                    self.b.snippet(call.lineno),
                ]
            )

    def _entry_cexpr(self, node: ast.expr) -> Optional[CExpr]:
        """Encode a ``target=`` expression as a callable reference."""
        if isinstance(node, ast.Attribute):
            base = self.texpr_of(node.value)
            if base is not None:
                return ["method", base, node.attr]
        name = dotted_name(node)
        if name is not None:
            return ["dotted", resolve(name, self.b.aliases)]
        return None


class _SummaryBuilder:
    """Builds one :class:`FileSummary` from a parsed module."""

    def __init__(self, module: Module) -> None:
        self.mod = module
        self.aliases = module.aliases
        self.summary = FileSummary(
            relpath=module.relpath,
            module=module_name_for(module.relpath),
            scopes=sorted(module.scopes),
            suppressions={
                line: (None if codes is None else sorted(codes))
                for line, codes in module.suppressions.items()
            },
        )

    def snippet(self, line: int) -> str:
        return self.mod.snippet(line)

    def declare(self) -> None:
        """First pass: imports + class shells (bases, annotated attrs)."""
        self._collect_imports()
        for node in self.mod.tree.body:
            if isinstance(node, ast.ClassDef):
                self._declare_class(node)

    def scan_bodies(self) -> None:
        """Second pass: function bodies (needs lock fields settled)."""
        for node in self.mod.tree.body:
            self._top_level(node)
        self._settle_acquire_releases()

    # -- imports -----------------------------------------------------------

    def _collect_imports(self) -> None:
        pkg_parts = self.summary.module.split(".")[:-1] if (
            self.summary.module
        ) else []
        if self.summary.relpath.endswith("__init__.py"):
            pkg_parts = self.summary.module.split(".") if (
                self.summary.module
            ) else []
        seen: Set[str] = set()
        for node in ast.walk(self.mod.tree):
            if isinstance(node, ast.Import):
                for a in node.names:
                    seen.add(a.name)
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    base_parts = pkg_parts[: len(pkg_parts) - (
                        node.level - 1
                    )] if node.level > 1 else list(pkg_parts)
                    if node.module:
                        base_parts = base_parts + node.module.split(".")
                    if base_parts:
                        seen.add(".".join(base_parts))
                    # `from . import x` / `from .pkg import mod`: the
                    # bound names may themselves be modules
                    for a in node.names:
                        if a.name != "*":
                            seen.add(".".join(base_parts + [a.name]))
                elif node.module:
                    seen.add(node.module)
                    for a in node.names:
                        if a.name != "*":
                            seen.add(f"{node.module}.{a.name}")
        self.summary.imports = sorted(seen)

    # -- declarations -------------------------------------------------------

    def _top_level(self, node: ast.stmt) -> None:
        if isinstance(node, ast.ClassDef):
            self._scan_class(node)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            func = FuncSummary(name=node.name, line=node.lineno)
            func.returns = _ann_info(node.returns)
            scanner = _FunctionScanner(self, func, node, None)
            scanner.scan(node.body)
            self.summary.functions[node.name] = func
        elif isinstance(node, (ast.Assign, ast.Expr, ast.If, ast.Try,
                               ast.With)):
            # module-level executable code can still start threads /
            # register metrics: scan it as an anonymous function
            func = self.summary.functions.setdefault(
                "<module>", FuncSummary(name="<module>", line=1)
            )
            scanner = _FunctionScanner(self, func, node, None)
            scanner._scan_stmt(node, ())

    def _declare_class(self, node: ast.ClassDef) -> None:
        cls = ClassSummary(name=node.name, line=node.lineno)
        for base in node.bases:
            name = dotted_name(base)
            if name is not None:
                cls.bases.append(resolve(name, self.aliases))
        self.summary.classes[node.name] = cls
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                info = _ann_info(stmt.annotation)
                if info is not None:
                    cls.attr_types[stmt.target.id] = info
                if stmt.target.id not in cls.attrs:
                    cls.attrs.append(stmt.target.id)

    def _scan_class(self, node: ast.ClassDef) -> None:
        cls = self.summary.classes[node.name]
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                func = FuncSummary(name=stmt.name, line=stmt.lineno)
                func.returns = _ann_info(stmt.returns)
                scanner = _FunctionScanner(self, func, stmt, cls)
                scanner.scan(stmt.body)
                cls.methods[stmt.name] = func

    # -- acquire/release pairing (C602) -------------------------------------

    def _settle_acquire_releases(self) -> None:
        """Mark ``.acquire()`` sites that have a matching finally-release."""
        releases: Dict[str, List[Tuple[int, int]]] = {}
        for node in ast.walk(self.mod.tree):
            if not isinstance(node, ast.Try) or not node.finalbody:
                continue
            span = (
                node.lineno,
                max(
                    getattr(n, "end_lineno", node.lineno) or node.lineno
                    for n in node.finalbody
                ),
            )
            for sub in node.finalbody:
                for call in ast.walk(sub):
                    if (
                        isinstance(call, ast.Call)
                        and isinstance(call.func, ast.Attribute)
                        and call.func.attr == "release"
                    ):
                        text = dotted_name(call.func.value)
                        if text is not None:
                            releases.setdefault(text, []).append(span)
        for container in list(self.summary.functions.values()) + [
            m
            for c in self.summary.classes.values()
            for m in c.methods.values()
        ]:
            for acq in container.acquires:
                for start, end in releases.get(acq["recv"], ()):
                    # blessed when the release's try spans the acquire
                    # or begins right after it (acquire(); try/finally)
                    if start <= acq["line"] <= end or (
                        0 <= start - acq["line"] <= 2
                    ):
                        acq["released"] = True
                        break


def _note_attr_assignment_types(
    summary: FileSummary, module: Module
) -> None:
    """Second pass: attribute types and lock fields from assignments.

    ``self.x = ClassName(...)`` types ``x`` as ``ClassName``;
    ``self.x = threading.Lock()`` additionally inventories ``x`` as a
    lock field; ``self.x: T = ...`` uses the annotation.
    """
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        cls = summary.classes.get(node.name)
        if cls is None:
            continue
        for sub in ast.walk(node):
            target: Optional[ast.expr] = None
            value: Optional[ast.expr] = None
            ann: Optional[ast.expr] = None
            if isinstance(sub, ast.Assign) and len(sub.targets) == 1:
                target, value = sub.targets[0], sub.value
            elif isinstance(sub, ast.AnnAssign):
                target, value, ann = sub.target, sub.value, sub.annotation
            else:
                continue
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            attr = target.attr
            if ann is not None:
                info = _ann_info(ann)
                if info is not None:
                    cls.attr_types.setdefault(attr, info)
            if isinstance(value, ast.Call):
                name = dotted_name(value.func)
                if name is None:
                    continue
                resolved = resolve(name, module.aliases)
                if resolved in _LOCK_TYPES:
                    if attr not in cls.locks:
                        cls.locks.append(attr)
                elif resolved in _EVENT_TYPES:
                    if attr not in cls.events:
                        cls.events.append(attr)
                else:
                    tail = resolved.rpartition(".")[2]
                    if tail and tail[:1].isupper():
                        cls.attr_types.setdefault(
                            attr, {"name": tail, "elem": None}
                        )


def build_summary(module: Module) -> FileSummary:
    """Build the whole-program summary for one parsed module."""
    builder = _SummaryBuilder(module)
    builder.declare()
    # settle lock/event fields and constructor-inferred attribute types
    # BEFORE scanning bodies, so `with self.<lockfield>:` is recognized
    # even when the field name carries no "lock"-ish fragment
    _note_attr_assignment_types(builder.summary, module)
    builder.scan_bodies()
    return builder.summary


# -- the whole-program index --------------------------------------------------


class ProjectIndex:
    """All file summaries plus cross-file resolution tables."""

    def __init__(self, summaries: Sequence[FileSummary]) -> None:
        self.files: Dict[str, FileSummary] = {
            s.relpath: s for s in summaries
        }
        #: dotted module name -> relpath
        self.modules: Dict[str, str] = {
            s.module: s.relpath for s in summaries if s.module
        }
        #: class name -> [(relpath, ClassSummary)] (resolution by name)
        self.classes: Dict[str, List[Tuple[str, ClassSummary]]] = {}
        for s in summaries:
            for cls in s.classes.values():
                self.classes.setdefault(cls.name, []).append(
                    (s.relpath, cls)
                )
        self._reverse: Optional[Dict[str, Set[str]]] = None

    # -- module / import resolution -----------------------------------------

    def resolve_module(self, dotted: str) -> Optional[str]:
        """relpath of an imported dotted name, tolerating package roots.

        ``repro.runtime.guard`` matches the scanned ``runtime.guard``
        (imports spell the installed package name; relpaths are
        scan-root-relative), by stripping leading segments until a
        scanned module matches.
        """
        parts = dotted.split(".")
        for skip in range(len(parts)):
            candidate = ".".join(parts[skip:])
            if candidate in self.modules:
                return self.modules[candidate]
        return None

    def import_edges(self) -> Dict[str, Set[str]]:
        """relpath -> set of in-tree relpaths it imports."""
        edges: Dict[str, Set[str]] = {}
        for relpath, summary in self.files.items():
            deps: Set[str] = set()
            for imp in summary.imports:
                target = self.resolve_module(imp)
                if target is not None and target != relpath:
                    deps.add(target)
            edges[relpath] = deps
        return edges

    def reverse_deps(self) -> Dict[str, Set[str]]:
        """relpath -> set of relpaths that (directly) import it."""
        if self._reverse is None:
            rev: Dict[str, Set[str]] = {rp: set() for rp in self.files}
            for src, deps in self.import_edges().items():
                for dep in deps:
                    rev.setdefault(dep, set()).add(src)
            self._reverse = rev
        return self._reverse

    def reverse_closure(self, changed: Set[str]) -> Set[str]:
        """``changed`` plus everything that transitively imports it."""
        rev = self.reverse_deps()
        out = set(changed) & set(self.files)
        frontier = list(out)
        while frontier:
            current = frontier.pop()
            for dependent in rev.get(current, ()):
                if dependent not in out:
                    out.add(dependent)
                    frontier.append(dependent)
        return out

    # -- class resolution ----------------------------------------------------

    def class_by_name(
        self, name: str
    ) -> Optional[Tuple[str, ClassSummary]]:
        """The unique class with this name, or None when absent/ambiguous."""
        candidates = self.classes.get(name, [])
        if len(candidates) == 1:
            return candidates[0]
        return None

    def iter_classes(self) -> Iterator[Tuple[str, ClassSummary]]:
        for relpath in sorted(self.files):
            summary = self.files[relpath]
            for name in sorted(summary.classes):
                yield relpath, summary.classes[name]

    def suppressed(self, relpath: str, line: int, code: str) -> bool:
        summary = self.files.get(relpath)
        if summary is None or line not in summary.suppressions:
            return False
        codes = summary.suppressions[line]
        return codes is None or code in codes

    # -- thread-entry seeding ------------------------------------------------

    def handler_classes(self) -> Set[Tuple[str, str]]:
        """(relpath, class) pairs whose methods run on server threads."""
        out: Set[Tuple[str, str]] = set()
        for relpath, cls in self.iter_classes():
            if self._is_handler(relpath, cls, depth=0):
                out.add((relpath, cls.name))
        return out

    def _is_handler(
        self, relpath: str, cls: ClassSummary, depth: int
    ) -> bool:
        if depth > 8:
            return False
        for base in cls.bases:
            tail = base.rpartition(".")[2]
            if base in _HANDLER_BASES or tail in {
                b.rpartition(".")[2] for b in _HANDLER_BASES
            }:
                return True
            parent = self.class_by_name(tail)
            if parent is not None and self._is_handler(
                parent[0], parent[1], depth + 1
            ):
                return True
        return False

    def thread_subclasses(self) -> Set[Tuple[str, str]]:
        """(relpath, class) pairs subclassing ``threading.Thread``."""
        out: Set[Tuple[str, str]] = set()
        for relpath, cls in self.iter_classes():
            for base in cls.bases:
                if base == "threading.Thread" or base.rpartition(
                    "."
                )[2] == "Thread":
                    out.add((relpath, cls.name))
        return out

    def thread_entries(self) -> List[Tuple[str, Optional[str], str]]:
        """Seed (relpath, class | None, func) thread-entry points.

        Seeded from explicit ``threading.Thread(target=...)`` sites,
        every method of an ``http.server``-style handler class, and the
        ``run`` method of ``threading.Thread`` subclasses.
        """
        entries: Set[Tuple[str, Optional[str], str]] = set()
        for relpath, summary in self.files.items():
            for site in summary.thread_targets:
                entries.update(
                    self._entries_for_target(relpath, site["t"])
                )
                # `target=self.method` inside a class method
                target = site["t"]
                if (
                    target[0] == "method"
                    and target[1] == ["self"]
                    and site.get("cls")
                ):
                    cls = summary.classes.get(site["cls"])
                    if cls is not None and target[2] in cls.methods:
                        entries.add((relpath, cls.name, target[2]))
        for relpath, clsname in self.handler_classes():
            cls = self.files[relpath].classes[clsname]
            for method in cls.methods:
                entries.add((relpath, clsname, method))
        for relpath, clsname in self.thread_subclasses():
            cls = self.files[relpath].classes[clsname]
            if "run" in cls.methods:
                entries.add((relpath, clsname, "run"))
        return sorted(
            entries, key=lambda e: (e[0], e[1] or "", e[2])
        )

    def _entries_for_target(
        self, relpath: str, target: CExpr
    ) -> Set[Tuple[str, Optional[str], str]]:
        out: Set[Tuple[str, Optional[str], str]] = set()
        if target[0] == "dotted":
            dotted = target[1]
            head, _, tail = dotted.rpartition(".")
            summary = self.files[relpath]
            if not head and dotted in summary.functions:
                out.add((relpath, None, dotted))
                return out
            mod = self.resolve_module(head) if head else None
            if mod is not None and tail in self.files[mod].functions:
                out.add((mod, None, tail))
                return out
            resolved = self.class_by_name(head.rpartition(".")[2]) if (
                head
            ) else None
            if resolved is not None and tail in resolved[1].methods:
                out.add((resolved[0], resolved[1].name, tail))
        elif target[0] == "method":
            # resolution of the receiver texpr needs the call graph's
            # machinery; the CallGraph re-seeds these (see callgraph)
            pass
        return out
