"""Tests for lifetime and result serialisation."""

import numpy as np

from repro.core import AvfStudy, FaultMode, Parity, compute_mb_avf
from repro.core.avf import StructureLifetimes
from repro.core.intervals import AceClass, IntervalSet, Outcome
from repro.core.serialize import (
    load_lifetimes,
    load_results,
    result_from_dict,
    result_to_dict,
    save_lifetimes,
    save_results,
)
from repro.workloads import run

ACE = int(AceClass.ACE)
DEAD = int(AceClass.READ_DEAD)


class TestLifetimeRoundtrip:
    def _sample(self):
        return StructureLifetimes(
            "sample",
            [
                IntervalSet([(0, 10, ACE), (12, 20, DEAD)]),
                IntervalSet(),
                IntervalSet([(5, 6, ACE)]),
            ],
            0, 100,
        )

    def test_roundtrip(self, tmp_path):
        lt = self._sample()
        path = tmp_path / "lt.npz"
        save_lifetimes(lt, path)
        back = load_lifetimes(path)
        assert back.name == lt.name
        assert back.start_cycle == lt.start_cycle
        assert back.end_cycle == lt.end_cycle
        assert len(back.byte_isets) == len(lt.byte_isets)
        for a, b in zip(back.byte_isets, lt.byte_isets):
            assert a.intervals() == b.intervals()

    def test_roundtrip_of_real_lifetimes(self, tmp_path):
        r = run("vectoradd", n_cus=1)
        study = AvfStudy(r.apu, r.output_ranges)
        lt = study.l1_lifetimes()[0]
        path = tmp_path / "l1.npz"
        save_lifetimes(lt, path)
        back = load_lifetimes(path)
        for a, b in zip(back.byte_isets, lt.byte_isets):
            assert a.intervals() == b.intervals()

    def test_analysis_on_reloaded_lifetimes_matches(self, tmp_path):
        """The decoupled flow: save lifetimes, reload, re-measure."""
        from repro.core.layout import Interleaving, build_cache_array

        r = run("matmul", n_cus=1)
        study = AvfStudy(r.apu, r.output_ranges)
        lt = study.l1_lifetimes()[0]
        cfg = r.apu.memsys.l1s[0].config
        layout = build_cache_array(
            cfg.n_sets, cfg.n_ways, cfg.line_bytes,
            style=Interleaving.LOGICAL, factor=2,
        )
        direct = compute_mb_avf(layout, lt, FaultMode.linear(2), Parity())
        path = tmp_path / "l1.npz"
        save_lifetimes(lt, path)
        reloaded = compute_mb_avf(
            layout, load_lifetimes(path), FaultMode.linear(2), Parity()
        )
        assert reloaded.due_avf == direct.due_avf
        assert reloaded.sdc_avf == direct.sdc_avf


class TestResultRoundtrip:
    def _result(self, with_series=False):
        lt = StructureLifetimes(
            "toy", [IntervalSet([(0, 50, ACE)]), IntervalSet()], 0, 100
        )
        from repro.core.layout import Interleaving, SramArray

        domain_of = np.array([[c % 2 for c in range(16)]], dtype=np.int32)
        arr = SramArray(
            "toy", domain_of.copy(), domain_of, 1, 2, Interleaving.LOGICAL
        )
        edges = [0, 50, 100] if with_series else None
        return compute_mb_avf(
            arr, lt, FaultMode.linear(2), Parity(), series_edges=edges
        )

    def test_dict_roundtrip(self):
        res = self._result()
        back = result_from_dict(result_to_dict(res))
        assert back.due_avf == res.due_avf
        assert back.sdc_avf == res.sdc_avf
        assert back.mode == res.mode
        assert back.n_groups == res.n_groups

    def test_series_roundtrip(self):
        res = self._result(with_series=True)
        back = result_from_dict(result_to_dict(res))
        assert np.allclose(
            back.series_avf(Outcome.TRUE_DUE), res.series_avf(Outcome.TRUE_DUE)
        )

    def test_file_roundtrip(self, tmp_path):
        results = {"a": self._result(), "b": self._result(with_series=True)}
        path = tmp_path / "results.json"
        save_results(results, path)
        back = load_results(path)
        assert set(back) == {"a", "b"}
        assert back["a"].due_avf == results["a"].due_avf
        assert back["b"].series is not None
