"""Cross-validation of ACE analysis against statistical fault injection.

The original ACE-analysis literature (Mukherjee et al., and the Wang et al.
comparison the paper discusses in Sec. III) validates AVF models by
injecting random faults and comparing the observed error rate against the
model's prediction.  This module runs that experiment on the memory data
image: the model predicts that a uniformly random (byte, bit, cycle) flip
causes SDC with probability equal to the region's ACE fraction; injection
measures it directly.

ACE analysis is conservative by construction — byte-granular lifetimes
ignore bit-level masking at the consumer, and detection-free regions treat
every ACE hit as an SDC — so the observed rate should fall at or below the
prediction, while remaining the right order of magnitude.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..core.analysis import AvfStudy
from ..workloads.base import run_workload
from ..workloads.suite import REGISTRY

__all__ = ["ValidationResult", "validate_memory_avf"]


@dataclass
class ValidationResult:
    """Model-vs-injection comparison for one benchmark."""

    benchmark: str
    region: Tuple[int, int]
    model_avf: float
    n_injections: int
    sdc: int = 0
    masked: int = 0
    crash: int = 0

    @property
    def observed_rate(self) -> float:
        return self.sdc / self.n_injections if self.n_injections else 0.0

    @property
    def stderr(self) -> float:
        """Binomial standard error of the observed SDC rate."""
        p = self.observed_rate
        n = self.n_injections
        return float(np.sqrt(p * (1 - p) / n)) if n else 0.0


def _snapshot(mem, outputs) -> bytes:
    return b"".join(
        mem.data[b : b + sz].tobytes()
        for b, sz in (mem.buffer(n) for n in outputs)
    )


def validate_memory_avf(
    benchmark: str,
    *,
    n_injections: int = 150,
    seed: int = 0,
    n_cus: int = 2,
    region: Optional[Tuple[int, int]] = None,
) -> ValidationResult:
    """Run the injection-vs-ACE validation for one benchmark.

    ``region`` defaults to the benchmark's full allocated footprint.  The
    model prediction comes from :meth:`AvfStudy.memory_lifetimes`; each
    injection flips one random bit of one random byte at one random cycle
    and compares the program output with the golden run.
    """
    if benchmark not in REGISTRY:
        raise KeyError(f"unknown benchmark {benchmark!r}")
    cls = REGISTRY[benchmark]
    golden_run = run_workload(cls(seed=seed), n_cus=n_cus)
    outputs = cls.outputs
    golden = _snapshot(golden_run.memory, outputs)
    if region is None:
        bases = list(golden_run.memory.buffers().values())
        lo = min(b for b, _ in bases)
        hi = max(b + s for b, s in bases)
        region = (lo, hi - lo)
    study = AvfStudy(golden_run.apu, golden_run.output_ranges)
    lifetimes = study.memory_lifetimes(region)
    result = ValidationResult(
        benchmark, region, lifetimes.sb_ace_fraction(), n_injections
    )
    end_cycle = golden_run.end_cycle
    rng = np.random.default_rng(seed + 0x5EED)
    for _ in range(n_injections):
        addr = region[0] + int(rng.integers(0, region[1]))
        bit = int(rng.integers(0, 8))
        cycle = int(rng.integers(0, max(end_cycle, 1)))
        wl = cls(seed=seed)
        try:
            from ..arch.gpu import Apu
            from ..arch.memory import GlobalMemory

            mem = GlobalMemory()
            wl.setup(mem)
            apu = Apu(n_cus=n_cus, memory=mem, max_cycles=2_000_000)
            apu.inject_memory_fault(addr, 1 << bit, cycle)
            wl.launch(apu)
            apu.finish()
            # Late injections (after the last instruction) still corrupt
            # output buffers the host reads; apply any stragglers.
            apu._apply_mem_injections()
        except Exception:
            result.crash += 1
            continue
        got = _snapshot(mem, outputs)
        if got == golden:
            result.masked += 1
        else:
            result.sdc += 1
    return result
