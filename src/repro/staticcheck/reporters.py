"""Render lint results as human text, machine JSON, or SARIF 2.1.0."""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from .baseline import Comparison
from .engine import RunResult
from .findings import Finding
from .registry import rule_classes

__all__ = ["render_text", "render_json", "render_sarif"]


def _finding_lines(findings: List[Finding], tag: str = "") -> List[str]:
    out: List[str] = []
    for f in findings:
        suffix = f" [{tag}]" if tag else ""
        out.append(f"{f.location()}: {f.rule} {f.message}{suffix}")
        if f.snippet:
            out.append(f"    {f.snippet.strip()}")
    return out


def render_text(
    result: RunResult, comparison: Optional[Comparison] = None
) -> str:
    """Human-readable report; baseline-aware when a comparison is given."""
    lines: List[str] = []
    if comparison is None:
        lines.extend(_finding_lines(result.findings))
        counts = result.by_rule()
        total = len(result.findings)
        summary = (
            f"{total} finding{'s' if total != 1 else ''} in "
            f"{result.files_scanned} files"
        )
        if counts:
            summary += " (" + ", ".join(
                f"{rule}:{n}" for rule, n in counts.items()
            ) + ")"
        lines.append(summary)
        return "\n".join(lines)

    if comparison.new:
        lines.append("new findings (not in baseline):")
        lines.extend(_finding_lines(comparison.new))
    if comparison.stale:
        lines.append("stale baseline entries (debt paid down — shrink "
                      "the baseline with --update-baseline):")
        for rule, path, allowed, current in comparison.stale:
            lines.append(
                f"  {path}: {rule} baseline allows {allowed}, "
                f"found {current}"
            )
    verdict = "clean" if comparison.clean else "FAILED"
    lines.append(
        f"{verdict}: {len(comparison.new)} new, {comparison.baselined} "
        f"baselined, {len(comparison.stale)} stale "
        f"({result.files_scanned} files scanned)"
    )
    return "\n".join(lines)


def render_json(
    result: RunResult, comparison: Optional[Comparison] = None
) -> str:
    """Machine-readable report (stable key order, newline-terminated)."""
    payload: Dict[str, object] = {
        "files_scanned": result.files_scanned,
        "files_skipped": result.files_skipped,
        "parse_errors": result.parse_errors,
        "rules": {
            cls.code: cls.describe() for cls in rule_classes().values()
        },
        "counts": result.by_rule(),
        "findings": [f.to_dict() for f in result.findings],
    }
    if comparison is not None:
        payload["baseline"] = {
            "clean": comparison.clean,
            "new": [f.to_dict() for f in comparison.new],
            "baselined": comparison.baselined,
            "stale": [
                {
                    "rule": rule,
                    "path": path,
                    "baseline_count": allowed,
                    "current_count": current,
                }
                for rule, path, allowed, current in comparison.stale
            ],
        }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_sarif(
    result: RunResult, comparison: Optional[Comparison] = None
) -> str:
    """SARIF 2.1.0 log, for code-scanning upload and editor ingestion.

    With a baseline comparison only the *new* (unbaselined) findings are
    emitted as results — SARIF consumers treat every result as
    actionable, so baselined debt is withheld rather than re-announced.
    """
    classes = rule_classes()
    codes = sorted(classes)
    rule_index = {code: i for i, code in enumerate(codes)}
    rules: List[Dict[str, object]] = []
    for code in codes:
        cls = classes[code]
        rules.append(
            {
                "id": code,
                "name": cls.slug,
                "shortDescription": {"text": cls.summary},
                "fullDescription": {"text": cls.rationale},
                "defaultConfiguration": {"level": "error"},
                "properties": {
                    "family": cls.family,
                    "scope": cls.scope or "all",
                },
            }
        )
    findings = comparison.new if comparison is not None else result.findings
    # E001 (parse error) is emitted by the engine, not a registered rule
    for code in sorted({f.rule for f in findings} - set(rule_index)):
        rule_index[code] = len(rules)
        rules.append(
            {
                "id": code,
                "name": "parse-error" if code == "E001" else code,
                "shortDescription": {"text": "file does not parse"},
                "defaultConfiguration": {"level": "error"},
            }
        )
    results: List[Dict[str, object]] = []
    for f in findings:
        results.append(
            {
                "ruleId": f.rule,
                "ruleIndex": rule_index[f.rule],
                "level": "error",
                "message": {"text": f.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {"uri": f.path},
                            "region": {
                                "startLine": f.line,
                                "startColumn": f.col + 1,
                            },
                        }
                    }
                ],
            }
        )
    log = {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.staticcheck",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(log, indent=2, sort_keys=True) + "\n"
