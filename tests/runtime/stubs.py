"""Module-level stub task functions for runtime tests.

Worker processes are created with the ``spawn`` start method, which
pickles task functions by qualified name — so everything dispatched to a
process-mode Executor must live at module level, here.
"""

import os
import time

from repro.runtime import InfraError, SimulationCrash, SimulationHang


def dispatch(payload):
    """One picklable entry point multiplexing all stub behaviours."""
    kind, arg = payload
    return _STUBS[kind](arg)


def _ok(arg):
    return arg * 2


def _crash(_):
    raise SimulationCrash("simulated trap")


def _hang(_):
    raise SimulationHang("simulated runaway kernel")


def _bug(_):
    raise ValueError("harness bug")


def _infra(_):
    raise InfraError("explicit infrastructure failure")


def _sleep(seconds):
    time.sleep(seconds)
    return "slept"


def _die(code):
    os._exit(code)


def _flaky(marker_path):
    """Dies on the first attempt, succeeds on the next (cross-process
    state via a marker file, so it survives the worker respawn)."""
    if not os.path.exists(marker_path):
        with open(marker_path, "w") as fh:
            fh.write("attempt 1\n")
        os._exit(3)
    return "recovered"


_STUBS = {
    "ok": _ok,
    "crash": _crash,
    "hang": _hang,
    "bug": _bug,
    "infra": _infra,
    "sleep": _sleep,
    "die": _die,
    "flaky": _flaky,
}
