"""Unit tests for the cache hierarchy (metadata, LRU, events, timing)."""

import numpy as np
import pytest

from repro.arch.cache import Cache, CacheConfig, MemSystem
from repro.arch.trace import EvictEvent, FillEvent, ReadEvent, WriteEvent


def _tiny_memsys(**kw):
    cfg1 = CacheConfig(n_sets=2, n_ways=2, line_bytes=64, hit_latency=4)
    cfg2 = CacheConfig(n_sets=4, n_ways=2, line_bytes=64, hit_latency=24)
    return MemSystem(1, cfg1, cfg2, **kw)


def _addrs(*vals):
    return np.array(vals, dtype=np.uint32)


class TestCacheConfig:
    def test_capacity(self):
        cfg = CacheConfig(64, 4, 64, 4)
        assert cfg.capacity == 16 * 1024

    def test_set_mapping(self):
        cfg = CacheConfig(4, 2, 64, 1)
        assert cfg.set_of(0) == 0
        assert cfg.set_of(64) == 1
        assert cfg.set_of(64 * 4) == 0

    def test_mismatched_line_sizes_rejected(self):
        with pytest.raises(ValueError):
            MemSystem(
                1,
                CacheConfig(2, 2, 64, 4),
                CacheConfig(2, 2, 128, 24),
            )


class TestLruReplacement:
    def test_fills_empty_ways_first(self):
        c = Cache("t", CacheConfig(1, 4, 64, 1), writeback=False)
        for i in range(4):
            s, w = c.install(i * 64, t=i, fill_id=i)
            assert (s, w) == (0, i)

    def test_evicts_least_recently_used(self):
        c = Cache("t", CacheConfig(1, 2, 64, 1), writeback=False)
        c.install(0, t=0, fill_id=1)
        c.install(64, t=1, fill_id=2)
        s, w = c.find(0)
        c.touch(s, w)  # line 0 is now MRU
        c.install(128, t=2, fill_id=3)  # must evict line 64
        assert c.find(64) == (0, -1)
        assert c.find(0)[1] >= 0
        assert c.find(128)[1] >= 0

    def test_victim_prefers_empty(self):
        c = Cache("t", CacheConfig(1, 2, 64, 1), writeback=False)
        c.install(0, t=0, fill_id=1)
        assert c.victim_way(0) == 1


class TestEventStream:
    def test_load_miss_emits_fill_then_read(self):
        ms = _tiny_memsys()
        ms.load(0, _addrs(0, 4), 4, t=10, uid=1)
        l1_events = ms.l1s[0].events
        kinds = [type(e).__name__ for e in l1_events]
        assert kinds == ["FillEvent", "ReadEvent"]
        assert l1_events[0].t == 10
        assert l1_events[1].uid == 1
        # The L2 saw a fill-read linking the L1 fill.
        l2_reads = [e for e in ms.l2.events if isinstance(e, ReadEvent)]
        assert l2_reads[0].kind == "fill"
        assert l2_reads[0].link == l1_events[0].fill_id

    def test_load_hit_emits_only_read(self):
        ms = _tiny_memsys()
        ms.load(0, _addrs(0), 4, t=1, uid=1)
        n = len(ms.l1s[0].events)
        ms.load(0, _addrs(0), 4, t=2, uid=2)
        new = ms.l1s[0].events[n:]
        assert len(new) == 1
        assert isinstance(new[0], ReadEvent)

    def test_store_is_no_allocate_in_l1(self):
        ms = _tiny_memsys()
        ms.store(0, _addrs(0), 4, t=1, uid=1)
        assert not ms.l1s[0].events           # L1 miss: nothing recorded
        l2_kinds = [type(e).__name__ for e in ms.l2.events]
        assert l2_kinds == ["FillEvent", "WriteEvent"]

    def test_store_hit_updates_l1_write_through(self):
        ms = _tiny_memsys()
        ms.load(0, _addrs(0), 4, t=1, uid=1)
        ms.store(0, _addrs(0), 4, t=2, uid=2)
        l1_writes = [e for e in ms.l1s[0].events if isinstance(e, WriteEvent)]
        l2_writes = [e for e in ms.l2.events if isinstance(e, WriteEvent)]
        assert len(l1_writes) == 1 and len(l2_writes) == 1

    def test_dirty_eviction_emits_writeback_read(self):
        ms = _tiny_memsys()
        ms.store(0, _addrs(0), 4, t=1, uid=1)
        # Force eviction of line 0's set in the 4-set L2: lines 0, 1024,
        # 2048 share set 0 (4 sets x 64B).
        ms.load(0, _addrs(1024), 4, t=2, uid=2)
        ms.load(0, _addrs(2048), 4, t=3, uid=3)
        wb = [
            e for e in ms.l2.events
            if isinstance(e, ReadEvent) and e.kind == "writeback"
        ]
        assert len(wb) == 1
        assert wb[0].line_addr == 0
        assert wb[0].byte_mask[:4].all()
        assert not wb[0].byte_mask[4:].any()

    def test_flush_writes_back_and_evicts_everything(self):
        ms = _tiny_memsys()
        ms.store(0, _addrs(0, 64), 4, t=1, uid=1)
        ms.flush(t=100)
        assert (ms.l2.tags == -1).all()
        wb = [
            e for e in ms.l2.events
            if isinstance(e, ReadEvent) and e.kind == "writeback"
        ]
        assert len(wb) == 2
        evs = [e for e in ms.l2.events if isinstance(e, EvictEvent)]
        assert len(evs) == 2

    def test_clean_eviction_has_no_writeback(self):
        ms = _tiny_memsys()
        ms.load(0, _addrs(0), 4, t=1, uid=1)
        ms.flush(t=2)
        wb = [
            e for e in ms.l2.events
            if isinstance(e, ReadEvent) and e.kind == "writeback"
        ]
        assert not wb


class TestTiming:
    def test_latency_ordering(self):
        ms = _tiny_memsys()
        miss = ms.load(0, _addrs(0), 4, t=0, uid=1)
        hit = ms.load(0, _addrs(0), 4, t=1, uid=2)
        assert hit == ms.l1s[0].config.hit_latency
        assert miss > ms.l2.config.hit_latency  # went to memory

    def test_l2_hit_between(self):
        ms = _tiny_memsys()
        ms.load(0, _addrs(0), 4, t=0, uid=1)
        # Evict from tiny L1 (2 sets x 2 ways: lines 0, 128, 256 map to set 0).
        ms.load(0, _addrs(128), 4, t=1, uid=2)
        ms.load(0, _addrs(256), 4, t=2, uid=3)
        l2hit = ms.load(0, _addrs(0), 4, t=3, uid=4)
        assert ms.l1s[0].config.hit_latency < l2hit
        assert l2hit == ms.l1s[0].config.hit_latency + ms.l2.config.hit_latency

    def test_store_latency_is_buffered(self):
        ms = _tiny_memsys(store_latency=4)
        assert ms.store(0, _addrs(0), 4, t=0, uid=1) == 4

    def test_multi_line_load_takes_max(self):
        ms = _tiny_memsys()
        ms.load(0, _addrs(0), 4, t=0, uid=1)
        # One resident line + one missing line: latency is the miss latency.
        lat = ms.load(0, _addrs(0, 64), 4, t=1, uid=2)
        assert lat > ms.l1s[0].config.hit_latency

    def test_hit_miss_counters(self):
        ms = _tiny_memsys()
        ms.load(0, _addrs(0), 4, t=0, uid=1)
        ms.load(0, _addrs(0), 4, t=1, uid=2)
        assert ms.l1s[0].misses == 1
        assert ms.l1s[0].hits == 1
