"""Shared fixtures for the results-store suite.

Rows are constructed by hand (no simulation): the store's contract is
about keys, idempotence and durability, which tiny synthetic rows probe
exactly as well as engine output — and the CLI/zero-simulation tests
assert the *absence* of engine work anyway.
"""

from types import SimpleNamespace

import pytest

from repro.core.sweep import SweepPoint
from repro.runtime import Journal
from repro.store import ResultStore

#: the canonical-key columns of avf_results (mirrors the schema UNIQUE)
KEY_COLUMNS = (
    "workload", "structure", "scheme", "style", "factor", "mode",
    "ser_model", "seed", "engine_version",
)


def avf_row(**over):
    """One complete avf_results row dict; keyword overrides."""
    row = {
        "workload": "matmul",
        "structure": "l1",
        "scheme": "parity",
        "style": "none",
        "factor": 1,
        "mode": "2x1",
        "ser_model": "none",
        "seed": 0,
        "engine_version": "1.0.0",
        "due_avf": 0.25,
        "sdc_avf": 0.125,
        "true_due_avf": 0.2,
        "false_due_avf": 0.05,
        "total_avf": 0.375,
        "n_groups": 64,
        "window_cycles": 128,
        "source": None,
    }
    row.update(over)
    return row


def sweep_point(**over):
    """A real :class:`SweepPoint` with synthetic numbers."""
    data = {
        "structure": "vgpr",
        "mode": "2x1",
        "scheme": "parity",
        "style": "inter_thread",
        "factor": 2,
        "due_avf": 0.5,
        "sdc_avf": 0.1,
        "true_due_avf": 0.4,
        "false_due_avf": 0.1,
    }
    data.update(over)
    return SweepPoint(**data)


def fake_result(**over):
    """Duck-typed :class:`MbAvfResult` for ingest_results."""
    data = {
        "structure": "l2",
        "scheme": "sec-ded",
        "mode": SimpleNamespace(name="3x1"),
        "due_avf": 0.3,
        "sdc_avf": 0.05,
        "true_due_avf": 0.25,
        "false_due_avf": 0.05,
        "total_avf": 0.35,
        "n_groups": 32,
        "window_cycles": 256,
    }
    data.update(over)
    return SimpleNamespace(**data)


class FakeCampaign:
    """Duck-typed :class:`BenchmarkCampaign` summary."""

    def __init__(self, benchmark="vectoradd", **over):
        self.benchmark = benchmark
        self.n_single_injections = over.get("n_single_injections", 12)
        self.n_sdc_ace_bits = over.get("n_sdc_ace_bits", 3)
        self.model_sdc_avf = over.get("model_sdc_avf", 0.042)
        self.single_outcomes = over.get(
            "single_outcomes", {"masked": 9, "sdc": 3}
        )
        self.multibit = over.get("multibit", {"2x1": [1, 0, 1]})
        self.failures = over.get("failures", {})
        self._interference = over.get("interference", 2)

    def interference_total(self):
        return self._interference


def point_record(task, workload="matmul", point=None, **over):
    """A journal record holding one sweep/grid cell result."""
    if point is None:
        point = sweep_point()
    rec = {
        "task": task,
        "outcome": "ok",
        "value": {
            "structure": point.structure,
            "mode": point.mode,
            "scheme": point.scheme,
            "style": point.style,
            "factor": point.factor,
            "due_avf": point.due_avf,
            "sdc_avf": point.sdc_avf,
            "true_due_avf": point.true_due_avf,
            "false_due_avf": point.false_due_avf,
        },
        "error": None,
        "attempts": 1,
        "duration": 0.01,
        "meta": {"benchmark": workload},
    }
    rec.update(over)
    return rec


def injection_record(task, verdict="masked", **over):
    """A journal record holding one fault-injection outcome."""
    rec = {
        "task": task,
        "outcome": "ok",
        "value": verdict,
        "error": None,
        "attempts": 1,
        "duration": 0.02,
        "meta": {"wf": 1, "reg": 4, "lane": 7, "cycle": 90, "bits": [3]},
    }
    rec.update(over)
    return rec


def write_journal(path, records):
    """Append ``records`` to a fresh journal at ``path``."""
    journal = Journal(path)
    for rec in records:
        journal.append(rec)
    journal.close()
    return path


@pytest.fixture
def store_path(tmp_path):
    return tmp_path / "results.sqlite"


@pytest.fixture
def store(store_path):
    with ResultStore(store_path) as s:
        yield s
