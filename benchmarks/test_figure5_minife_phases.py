"""Figure 5: MiniFE SB-AVF and 2x1 MB-AVF over time (program phases).

Shape targets (Sec. VI-B): both AVFs track the benchmark's cache usage over
time, but the MB/SB ratio *changes across phases* — the ratio is a property
of ACE locality, not of the AVF level — and the interleaving styles differ
by phase.
"""

import numpy as np
import pytest

from repro.core import FaultMode, Interleaving, Parity
from repro.core.intervals import Outcome

BUCKETS = 10


def _measure(study_of):
    study = study_of("minife")
    edges = np.linspace(0, study.end_cycle, BUCKETS + 1).astype(int)
    sb = study.cache_avf(
        "l1", FaultMode.linear(1), Parity(), series_edges=edges
    )
    series = {"sb": _due_series(sb)}
    for label, style in (
        ("logical", Interleaving.LOGICAL),
        ("way", Interleaving.WAY_PHYSICAL),
        ("index", Interleaving.INDEX_PHYSICAL),
    ):
        mb = study.cache_avf(
            "l1", FaultMode.linear(2), Parity(),
            style=style, factor=2, series_edges=edges,
        )
        series[label] = _due_series(mb)
    return edges, series


def _due_series(res):
    return res.series_avf(Outcome.TRUE_DUE) + res.series_avf(Outcome.FALSE_DUE)


@pytest.mark.benchmark(group="figure5")
def test_figure5_minife_phases(benchmark, study_of, report):
    edges, series = benchmark.pedantic(
        _measure, args=(study_of,), rounds=1, iterations=1
    )
    lines = [f"{'bucket':>7} {'SB':>8} {'2x1 log':>9} {'2x1 way':>9} {'2x1 idx':>9} {'idx/SB':>8}"]
    for b in range(BUCKETS):
        sb = series["sb"][b]
        ratio = series["index"][b] / sb if sb > 1e-9 else float("nan")
        lines.append(
            f"{b:>7} {sb:8.4f} {series['logical'][b]:9.4f} "
            f"{series['way'][b]:9.4f} {series['index'][b]:9.4f} {ratio:8.2f}"
        )
    report("figure5_minife_phases", lines)

    sb = series["sb"]
    active = sb > 0.02
    assert active.sum() >= 3, "minife must show several active phases"
    # Shape target 1: AVF varies over time (phases exist).
    assert sb[active].max() > 1.5 * sb[active].min()
    # Shape target 2: the MB/SB ratio itself changes between phases.
    ratios = series["index"][active] / sb[active]
    assert ratios.max() - ratios.min() > 0.02
    assert (ratios >= 1.0 - 1e-6).all()
    # Shape target 3: per-bucket MB-AVF of every style stays within [SB, 2xSB]
    # (up to the row-boundary group-count factor).
    for label in ("logical", "way", "index"):
        r = series[label][active] / sb[active]
        assert (r <= 2.0 * 1.005).all(), label
