"""P501 fixture: SQL assembled inline at execute() call sites.

Lives under a ``store/`` directory so path classification gives it the
``store`` scope (plus ``persistence``), exactly like the real package.
"""


def bad(conn, user, table, columns):
    conn.execute(f"SELECT * FROM results WHERE user = '{user}'")  # f-string
    conn.execute("DELETE FROM " + table)  # concatenation
    conn.execute("SELECT * FROM results WHERE id = %s" % user)  # %-interp
    conn.execute("SELECT * FROM {}".format(table))  # str.format
    conn.executemany(f"INSERT INTO {table} VALUES (?)", [(1,)])
    conn.executescript("DROP TABLE " + table)
    conn.execute(" ".join(["SELECT", columns, "FROM results"]))  # join


def good(conn, rows, where_clause, params):
    conn.execute("SELECT * FROM results WHERE user = ?", ("u",))
    sql = "SELECT * FROM results" + where_clause  # builder-style variable
    conn.execute(sql, params)
    conn.executemany("INSERT INTO results VALUES (?)", rows)
    conn.executescript("PRAGMA journal_mode = WAL")
