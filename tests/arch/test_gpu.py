"""Integration tests for the SIMT simulator (ISA semantics + timing)."""

import numpy as np
import pytest

from repro.arch import Apu, GlobalMemory, ProgramBuilder, fimm, imm, s, v


def _run(program, n_threads, args, mem=None, apu_kwargs=None):
    apu = Apu(memory=mem or GlobalMemory(), **(apu_kwargs or {}))
    stats = apu.launch(program, n_threads, args)
    return apu, stats


class TestVectorAdd:
    def _build(self):
        p = ProgramBuilder()
        # args: s2=a, s3=b, s4=c
        p.shl(v(2), v(0), imm(2))          # v2 = tid*4
        p.iadd(v(3), v(2), s(2))           # &a[tid]
        p.iadd(v(4), v(2), s(3))           # &b[tid]
        p.load(v(5), v(3))
        p.load(v(6), v(4))
        p.iadd(v(7), v(5), v(6))
        p.iadd(v(8), v(2), s(4))           # &c[tid]
        p.store(v(7), v(8))
        return p.build()

    def test_functional(self):
        mem = GlobalMemory()
        n = 64
        a = mem.alloc("a", n * 4)
        b = mem.alloc("b", n * 4)
        c = mem.alloc("c", n * 4)
        mem.view_u32("a")[:] = np.arange(n, dtype=np.uint32)
        mem.view_u32("b")[:] = np.arange(n, dtype=np.uint32) * 10
        apu, stats = _run(self._build(), n, [a, b, c], mem)
        apu.finish()
        assert (mem.view_u32("c") == np.arange(n) * 11).all()
        assert stats.n_wavefronts == 4
        assert stats.instructions == 4 * 8  # vector instructions are recorded
        assert stats.cycles > 0

    def test_partial_last_wavefront(self):
        mem = GlobalMemory()
        n = 20  # 2 wavefronts, second only 4 active lanes
        a = mem.alloc("a", 32 * 4)
        b = mem.alloc("b", 32 * 4)
        c = mem.alloc("c", 32 * 4)
        mem.view_u32("a")[:] = 5
        mem.view_u32("b")[:] = 7
        apu, _ = _run(self._build(), n, [a, b, c], mem)
        apu.finish()
        out = mem.view_u32("c")
        assert (out[:n] == 12).all()
        assert (out[n:] == 0).all()  # inactive lanes wrote nothing

    def test_cache_hits_on_rerun(self):
        mem = GlobalMemory()
        n = 16
        a = mem.alloc("a", n * 4)
        b = mem.alloc("b", n * 4)
        c = mem.alloc("c", n * 4)
        apu = Apu(memory=mem, n_cus=1)
        apu.launch(self._build(), n, [a, b, c])
        miss_1 = apu.memsys.l1s[0].misses
        apu.launch(self._build(), n, [a, b, c])
        miss_2 = apu.memsys.l1s[0].misses - miss_1
        assert miss_2 == 0  # everything resident after the first pass
        assert apu.memsys.l1s[0].hits > 0


class TestAluSemantics:
    def _exec_unary(self, build_fn, inputs, out_reg=3):
        """Run a 1-wavefront program over `inputs` preloaded into v2."""
        mem = GlobalMemory()
        buf = mem.alloc("in", 16 * 4)
        out = mem.alloc("out", 16 * 4)
        mem.view_u32("in")[: len(inputs)] = np.asarray(inputs, dtype=np.uint32)
        p = ProgramBuilder()
        p.shl(v(9), v(0), imm(2))
        p.iadd(v(9), v(9), s(2))
        p.load(v(2), v(9))
        build_fn(p)
        p.shl(v(9), v(0), imm(2))
        p.iadd(v(9), v(9), s(3))
        p.store(v(out_reg), v(9))
        apu, _ = _run(p.build(), 16, [buf, out], mem)
        apu.finish()
        return mem.view_u32("out")

    def test_integer_wraparound(self):
        out = self._exec_unary(
            lambda p: p.iadd(v(3), v(2), imm(1)), [0xFFFFFFFF] * 16
        )
        assert (out == 0).all()

    def test_shifts(self):
        out = self._exec_unary(lambda p: p.shl(v(3), v(2), imm(4)), [0x11] * 16)
        assert (out == 0x110).all()
        out = self._exec_unary(lambda p: p.shr(v(3), v(2), imm(4)), [0x110] * 16)
        assert (out == 0x11).all()

    def test_ashr_sign_extends(self):
        out = self._exec_unary(
            lambda p: p.ashr(v(3), v(2), imm(1)), [0x80000000] * 16
        )
        assert (out == 0xC0000000).all()

    def test_float_roundtrip(self):
        def body(p):
            p.cvt_i2f(v(3), v(2))
            p.fmul(v(3), v(3), fimm(2.5))
            p.cvt_f2i(v(3), v(3))

        out = self._exec_unary(body, list(range(16)))
        assert (out == (np.arange(16) * 2.5).astype(np.int64)).all()

    def test_fmac(self):
        def body(p):
            p.mov(v(3), fimm(10.0))
            p.cvt_i2f(v(4), v(2))
            p.fmac(v(3), v(4), fimm(3.0))  # v3 = 10 + in*3
            p.cvt_f2i(v(3), v(3))

        out = self._exec_unary(body, list(range(16)))
        assert (out == 10 + np.arange(16) * 3).all()

    def test_cndmask_predication(self):
        def body(p):
            p.cmp("lt", v(2), imm(8))
            p.cndmask(v(3), imm(111), imm(222))

        out = self._exec_unary(body, list(range(16)))
        assert (out[:8] == 111).all()
        assert (out[8:] == 222).all()

    def test_min_max_signed(self):
        def body(p):
            p.imin(v(3), v(2), imm(0))

        out = self._exec_unary(body, [0xFFFFFFFE] * 16)  # -2 signed
        assert (out == 0xFFFFFFFE).all()

    def test_shuffle_up(self):
        out = self._exec_unary(
            lambda p: p.shuffle_up(v(3), v(2), 1), list(range(16))
        )
        assert out[0] == 0
        assert (out[1:] == np.arange(15)).all()

    def test_shuffle_xor(self):
        out = self._exec_unary(
            lambda p: p.shuffle_xor(v(3), v(2), 1), list(range(16))
        )
        assert (out == (np.arange(16) ^ 1)).all()

    def test_readlane(self):
        def body(p):
            p.readlane(s(10), v(2), 5)
            p.mov(v(3), s(10))

        out = self._exec_unary(body, list(range(16)))
        assert (out == 5).all()


class TestControlFlow:
    def test_scalar_loop(self):
        """Sum 1..10 per lane with a scalar loop."""
        mem = GlobalMemory()
        out = mem.alloc("out", 16 * 4)
        p = ProgramBuilder()
        p.mov(v(2), imm(0))
        p.s_mov(s(10), imm(1))
        p.label("loop")
        p.iadd(v(2), v(2), s(10))
        p.s_iadd(s(10), s(10), imm(1))
        p.s_cmp("le", s(10), imm(10))
        p.cbranch("loop")
        p.shl(v(9), v(0), imm(2))
        p.iadd(v(9), v(9), s(2))
        p.store(v(2), v(9))
        apu, _ = _run(p.build(), 16, [out], mem)
        apu.finish()
        assert (mem.view_u32("out") == 55).all()

    def test_branch_unconditional(self):
        mem = GlobalMemory()
        out = mem.alloc("out", 16 * 4)
        p = ProgramBuilder()
        p.mov(v(2), imm(1))
        p.branch("skip")
        p.mov(v(2), imm(999))  # dead code, skipped
        p.label("skip")
        p.shl(v(9), v(0), imm(2))
        p.iadd(v(9), v(9), s(2))
        p.store(v(2), v(9))
        apu, _ = _run(p.build(), 16, [out], mem)
        apu.finish()
        assert (mem.view_u32("out") == 1).all()

    def test_runaway_guard(self):
        p = ProgramBuilder()
        p.label("forever")
        p.branch("forever")
        apu = Apu(memory=GlobalMemory(), max_cycles=10_000)
        with pytest.raises(RuntimeError, match="max_cycles"):
            apu.launch(p.build(), 16, [])


class TestLds:
    def test_lds_roundtrip(self):
        mem = GlobalMemory()
        out = mem.alloc("out", 16 * 4)
        p = ProgramBuilder()
        p.shl(v(2), v(1), imm(2))            # lane*4
        p.imul(v(3), v(0), imm(7))
        p.lds_store(v(3), v(2))
        # Read the neighbour's slot (reversed lane).
        p.isub(v(4), imm(15), v(1))
        p.shl(v(4), v(4), imm(2))
        p.lds_load(v(5), v(4))
        p.shl(v(9), v(0), imm(2))
        p.iadd(v(9), v(9), s(2))
        p.store(v(5), v(9))
        apu, _ = _run(p.build(), 16, [out], mem)
        apu.finish()
        assert (mem.view_u32("out") == (15 - np.arange(16)) * 7).all()


class TestPredicatedMemory:
    def test_predicated_store(self):
        mem = GlobalMemory()
        out = mem.alloc("out", 16 * 4)
        mem.view_u32("out")[:] = 0xAAAAAAAA
        p = ProgramBuilder()
        p.cmp("lt", v(0), imm(4))
        p.shl(v(9), v(0), imm(2))
        p.iadd(v(9), v(9), s(2))
        p.store(imm(7), v(9), pred=True)
        apu, _ = _run(p.build(), 16, [out], mem)
        apu.finish()
        got = mem.view_u32("out")
        assert (got[:4] == 7).all()
        assert (got[4:] == 0xAAAAAAAA).all()

    def test_predicated_load_leaves_dst(self):
        mem = GlobalMemory()
        buf = mem.alloc("in", 16 * 4)
        out = mem.alloc("out", 16 * 4)
        mem.view_u32("in")[:] = 42
        p = ProgramBuilder()
        p.mov(v(5), imm(1))
        p.cmp("ge", v(0), imm(8))
        p.shl(v(9), v(0), imm(2))
        p.iadd(v(2), v(9), s(2))
        p.load(v(5), v(2), pred=True)
        p.iadd(v(9), v(9), s(3))
        p.store(v(5), v(9))
        apu, _ = _run(p.build(), 16, [buf, out], mem)
        apu.finish()
        got = mem.view_u32("out")
        assert (got[:8] == 1).all()
        assert (got[8:] == 42).all()


class TestTiming:
    def test_l1_hit_faster_than_miss(self):
        def time_of(n_loads_same_line):
            mem = GlobalMemory()
            buf = mem.alloc("in", 4096)
            p = ProgramBuilder()
            p.iadd(v(2), imm(0), s(2))
            for _ in range(n_loads_same_line):
                p.load(v(3), v(2))
            apu = Apu(memory=mem, n_cus=1)
            st = apu.launch(p.build(), 16, [buf])
            return st.cycles

        one = time_of(1)
        ten = time_of(10)
        # After the first miss, subsequent loads hit: per-load cost is small.
        assert (ten - one) < 10 * 9

    def test_multiple_launches_share_clock(self):
        mem = GlobalMemory()
        buf = mem.alloc("in", 256)
        p = ProgramBuilder()
        p.iadd(v(2), imm(0), s(2))
        p.load(v(3), v(2))
        apu = Apu(memory=mem)
        s1 = apu.launch(p.build(), 16, [buf])
        s2 = apu.launch(p.build(), 16, [buf])
        assert s2.start_cycle >= s1.end_cycle

    def test_finish_flushes_and_locks(self):
        mem = GlobalMemory()
        buf = mem.alloc("in", 256)
        p = ProgramBuilder()
        p.iadd(v(2), imm(0), s(2))
        p.store(imm(3), v(2))
        apu = Apu(memory=mem)
        apu.launch(p.build(), 16, [buf])
        apu.finish()
        with pytest.raises(RuntimeError):
            apu.finish()
        with pytest.raises(RuntimeError):
            apu.launch(p.build(), 16, [buf])
