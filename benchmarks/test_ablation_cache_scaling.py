"""Ablation: cache capacity vs AVF (the scaled-substitution sanity check).

DESIGN.md substitutes scaled caches (4KB L1 / 32KB L2) for the paper's
16KB/256KB pair, arguing AVF depends on the working-set-to-capacity ratio.
This ablation runs the same workload against both configurations and checks
the expected behaviours:

* the *utilised fraction* drives AVF: quadrupling the capacity without
  growing the working set cuts the AVF by roughly the capacity ratio;
* MB/SB ratios (the paper's normalised results) are far more stable across
  capacities than the absolute AVFs — which is what licenses the scaling.
"""

import pytest

from repro.core import AvfStudy, FaultMode, Interleaving, Parity
from repro.experiments import scaled_apu_kwargs
from repro.workloads import run


def _measure():
    out = {}
    for label, kwargs in (
        ("scaled-4KB", scaled_apu_kwargs()),
        ("paper-16KB", {}),
    ):
        result = run("minife", apu_kwargs=kwargs or None)
        study = AvfStudy(result.apu, result.output_ranges)
        sb = study.cache_avf("l1", FaultMode.linear(1), Parity()).due_avf
        mb = study.cache_avf(
            "l1", FaultMode.linear(2), Parity(),
            style=Interleaving.WAY_PHYSICAL, factor=2,
        ).due_avf
        out[label] = (sb, mb)
    return out


@pytest.mark.benchmark(group="ablation")
def test_ablation_cache_scaling(benchmark, report):
    res = benchmark.pedantic(_measure, rounds=1, iterations=1)
    lines = [f"{'config':<12} {'SB-AVF':>8} {'2x1 way':>9} {'MB/SB':>7}"]
    ratios = {}
    for label, (sb, mb) in res.items():
        ratios[label] = mb / sb if sb else float("nan")
        lines.append(f"{label:<12} {sb:8.4f} {mb:9.4f} {ratios[label]:6.2f}x")
    report("ablation_cache_scaling", lines)

    sb_small = res["scaled-4KB"][0]
    sb_big = res["paper-16KB"][0]
    # Absolute AVF drops with unused capacity (same working set).
    assert sb_small > 1.5 * sb_big
    # The normalised MB/SB ratio is stable across capacities (within 25%).
    assert ratios["scaled-4KB"] == pytest.approx(ratios["paper-16KB"], rel=0.25)
