"""Integration tests: simulator events -> per-byte ACE lifetimes."""

import numpy as np

from repro.arch import Apu, GlobalMemory, ProgramBuilder, imm, s, v
from repro.core.analysis import AvfStudy
from repro.core.intervals import AceClass

ACE = int(AceClass.ACE)
DEAD = int(AceClass.READ_DEAD)


def _addr_calc(p, base_sreg, out_reg=9):
    p.shl(v(out_reg), v(0), imm(2))
    p.iadd(v(out_reg), v(out_reg), s(base_sreg))
    return v(out_reg)


class TestL1Lifetimes:
    def _study_copy_kernel(self, reload_count=1):
        """in -> out copy; the input line is loaded `reload_count` times."""
        mem = GlobalMemory()
        inp = mem.alloc("in", 64)
        out = mem.alloc("out", 64)
        mem.view_u32("in")[:] = np.arange(16, dtype=np.uint32)
        p = ProgramBuilder()
        a = _addr_calc(p, 2, 8)
        for _ in range(reload_count):
            p.load(v(2), a)
        b = _addr_calc(p, 3, 9)
        p.store(v(2), b)
        apu = Apu(memory=mem, n_cus=1)
        apu.launch(p.build(), 16, [inp, out])
        return AvfStudy(apu, [mem.buffer("out")]), mem, inp

    def test_loaded_bytes_become_ace(self):
        study, mem, inp = self._study_copy_kernel(reload_count=3)
        lt = study.l1_lifetimes()[0]
        ace_bytes = sum(1 for iset in lt.byte_isets if iset.total_at_least(ACE))
        # One 64-byte line worth of input data was consumed live.
        assert ace_bytes == 64

    def test_more_reuse_more_ace_time(self):
        s1, _, _ = self._study_copy_kernel(reload_count=1)
        s2, _, _ = self._study_copy_kernel(reload_count=8)
        t1 = sum(i.total_at_least(ACE) for i in s1.l1_lifetimes()[0].byte_isets)
        t2 = sum(i.total_at_least(ACE) for i in s2.l1_lifetimes()[0].byte_isets)
        assert t2 > t1

    def test_dead_load_yields_read_dead(self):
        """A load whose value is never used leaves READ_DEAD time in the L1."""
        mem = GlobalMemory()
        inp = mem.alloc("in", 64)
        out = mem.alloc("out", 64)
        p = ProgramBuilder()
        a = _addr_calc(p, 2, 8)
        p.load(v(2), a)          # dead: v2 never used
        p.load(v(3), a)          # keep the line resident a little longer
        p.load(v(2), a)          # still dead
        b = _addr_calc(p, 3, 9)
        p.store(imm(1), b)
        apu = Apu(memory=mem, n_cus=1)
        apu.launch(p.build(), 16, [inp, out])
        study = AvfStudy(apu, [mem.buffer("out")])
        lt = study.l1_lifetimes()[0]
        dead = sum(i.total(DEAD) for i in lt.byte_isets)
        live = sum(i.total(ACE) for i in lt.byte_isets)
        assert dead > 0
        assert live == 0

    def test_untouched_cache_is_unace(self):
        mem = GlobalMemory()
        out = mem.alloc("out", 64)
        p = ProgramBuilder()
        b = _addr_calc(p, 2, 9)
        p.store(imm(1), b)
        apu = Apu(memory=mem, n_cus=2)
        apu.launch(p.build(), 16, [out])
        study = AvfStudy(apu, [mem.buffer("out")])
        # CU1 never ran anything: its L1 must be entirely unACE.
        lt = study.l1_lifetimes()[1]
        assert all(not iset for iset in lt.byte_isets)


class TestL2WritebackLiveness:
    def _run_store_kernel(self, output_names):
        mem = GlobalMemory()
        outa = mem.alloc("a", 64)
        outb = mem.alloc("b", 64)
        p = ProgramBuilder()
        a = _addr_calc(p, 2, 8)
        p.store(v(0), a)
        b = _addr_calc(p, 3, 9)
        p.store(v(0), b)
        apu = Apu(memory=mem, n_cus=1)
        apu.launch(p.build(), 16, [outa, outb])
        ranges = [mem.buffer(n) for n in output_names]
        return AvfStudy(apu, ranges)

    def test_output_store_is_ace_until_flush(self):
        study = self._run_store_kernel(["a", "b"])
        lt = study.l2_lifetime()
        ace = sum(i.total(ACE) for i in lt.byte_isets)
        assert ace > 0

    def test_scratch_store_is_not_ace(self):
        study = self._run_store_kernel([])  # nothing is program output
        lt = study.l2_lifetime()
        ace = sum(i.total(ACE) for i in lt.byte_isets)
        assert ace == 0

    def test_output_membership_decides_liveness(self):
        # Declaring buffer b dead must remove exactly its ACE contribution
        # (b is stored later, so its ACE window is shorter than a's).
        both = self._run_store_kernel(["a", "b"])
        one = self._run_store_kernel(["a"])
        ace_both = sum(i.total(ACE) for i in both.l2_lifetime().byte_isets)
        ace_one = sum(i.total(ACE) for i in one.l2_lifetime().byte_isets)
        assert ace_both > ace_one > 0


class TestL2FillTransitivity:
    def test_l2_copy_live_only_if_l1_copy_consumed(self):
        """The L2 byte read to fill the L1 inherits the L1 copy's fate."""
        mem = GlobalMemory()
        inp = mem.alloc("in", 64)
        out = mem.alloc("out", 64)
        p = ProgramBuilder()
        a = _addr_calc(p, 2, 8)
        p.load(v(2), a)
        b = _addr_calc(p, 3, 9)
        p.store(v(2), b)
        apu = Apu(memory=mem, n_cus=1)
        apu.launch(p.build(), 16, [inp, out])
        study = AvfStudy(apu, [mem.buffer("out")])
        l2 = study.l2_lifetime()
        ace = sum(i.total(ACE) for i in l2.byte_isets)
        # The input line passed through the L2 and its L1 copy was consumed:
        # the L2 read-for-fill is a live read, but only instantaneously
        # (fill happened immediately after the L2 fill), so ACE time may be
        # zero; READ_DEAD/ACE classification still marks the read.
        total_classified = sum(
            i.total_at_least(1) for i in l2.byte_isets
        )
        assert total_classified >= 0  # smoke: no crash, classification ran
        assert ace >= 0


class TestVgprLifetimes:
    def test_register_ace_between_write_and_read(self):
        mem = GlobalMemory()
        out = mem.alloc("out", 64)
        p = ProgramBuilder()
        p.imul(v(2), v(0), imm(3))     # v2 written
        p.mov(v(3), imm(0))
        # waste some cycles
        for _ in range(10):
            p.iadd(v(3), v(3), imm(1))
        p.iadd(v(4), v(2), v(3))       # v2 read (live)
        b = _addr_calc(p, 2, 9)
        p.store(v(4), b)
        apu = Apu(memory=mem, n_cus=1)
        apu.launch(p.build(), 16, [out])
        study = AvfStudy(apu, [mem.buffer("out")])
        lts = study.vgpr_lifetimes()
        assert len(lts) == 1
        ace = sum(i.total(ACE) for i in lts[0].byte_isets)
        assert ace > 0

    def test_dead_register_not_ace(self):
        mem = GlobalMemory()
        out = mem.alloc("out", 64)
        p = ProgramBuilder()
        p.imul(v(2), v(0), imm(3))     # dead: never used
        for _ in range(10):
            p.iadd(v(3), v(3), imm(1))
        b = _addr_calc(p, 2, 9)
        p.store(imm(7), b)
        apu = Apu(memory=mem, n_cus=1)
        apu.launch(p.build(), 16, [out])
        study = AvfStudy(apu, [mem.buffer("out")])
        lt = study.vgpr_lifetimes()[0]
        n_regs = study.vgpr_regs
        # v2's bytes across all lanes: (lane * n_regs + 2)*4 ...
        for lane in range(16):
            for bofs in range(4):
                iset = lt.byte_isets[(lane * n_regs + 2) * 4 + bofs]
                assert iset.total_at_least(ACE) == 0

    def test_wavefront_count(self):
        mem = GlobalMemory()
        out = mem.alloc("out", 4 * 16 * 4)
        p = ProgramBuilder()
        b = _addr_calc(p, 2, 9)
        p.store(v(0), b)
        apu = Apu(memory=mem)
        apu.launch(p.build(), 64, [out])
        study = AvfStudy(apu, [mem.buffer("out")])
        assert len(study.vgpr_lifetimes()) == 4
