"""Protection-design exploration: minimise area under an SDC target.

Sec. VIII of the paper frames the architect's problem as "minimize overall
die area spent on reliability while achieving specified SER targets".  This
module automates that flow: evaluate a palette of (scheme, interleaving)
design points against measured MB-AVFs and per-mode raw fault rates, then
pick the cheapest design meeting the target.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .analysis import AvfStudy
from .faultmodes import FaultMode
from .layout import Interleaving
from .protection import Parity, ProtectionScheme, SecDed
from .ser import TABLE_III, soft_error_rate

__all__ = ["DesignPoint", "DesignResult", "evaluate_designs", "choose_design",
           "VGPR_DESIGN_PALETTE"]


@dataclass(frozen=True)
class DesignPoint:
    """One candidate protection design for a structure."""

    label: str
    scheme: ProtectionScheme
    style: Interleaving
    factor: int

    def area_overhead(self, word_bits: int = 32) -> float:
        return self.scheme.check_bits(word_bits) / word_bits


@dataclass(frozen=True)
class DesignResult:
    """A design point with its evaluated rates."""

    point: DesignPoint
    sdc_rate: float
    due_rate: float
    area_overhead: float

    @property
    def label(self) -> str:
        return self.point.label


#: The Sec. VIII palette: parity/SEC-DED x intra(r)/inter(t)-thread x2/x4.
VGPR_DESIGN_PALETTE: Tuple[DesignPoint, ...] = (
    DesignPoint("parity rx2", Parity(), Interleaving.INTRA_THREAD, 2),
    DesignPoint("parity rx4", Parity(), Interleaving.INTRA_THREAD, 4),
    DesignPoint("parity tx2", Parity(), Interleaving.INTER_THREAD, 2),
    DesignPoint("parity tx4", Parity(), Interleaving.INTER_THREAD, 4),
    DesignPoint("secded rx2", SecDed(), Interleaving.INTRA_THREAD, 2),
    DesignPoint("secded rx4", SecDed(), Interleaving.INTRA_THREAD, 4),
    DesignPoint("secded tx2", SecDed(), Interleaving.INTER_THREAD, 2),
    DesignPoint("secded tx4", SecDed(), Interleaving.INTER_THREAD, 4),
)


def _modes_of(fit_by_mode: Mapping[str, float]) -> List[int]:
    return sorted(int(m.split("x")[0]) for m in fit_by_mode)


def evaluate_designs(
    studies: Sequence[AvfStudy],
    *,
    structure: str = "vgpr",
    designs: Sequence[DesignPoint] = VGPR_DESIGN_PALETTE,
    fit_by_mode: Mapping[str, float] = TABLE_III,
    word_bits: int = 32,
) -> List[DesignResult]:
    """Measure the SDC/DUE rate of every design point over the workloads.

    Rates are the per-mode raw fault rates weighted by the per-mode MB-AVFs
    (eq. 3), averaged across the given studies.
    """
    results = []
    for point in designs:
        sdc = due = 0.0
        for study in studies:
            avf_by_mode: Dict[str, Tuple[float, float]] = {}
            for m in _modes_of(fit_by_mode):
                if structure == "vgpr":
                    res = study.vgpr_avf(
                        FaultMode.linear(m), point.scheme,
                        style=point.style, factor=point.factor,
                    )
                else:
                    res = study.cache_avf(
                        structure, FaultMode.linear(m), point.scheme,
                        style=point.style, factor=point.factor,
                    )
                avf_by_mode[f"{m}x1"] = (res.due_avf, res.sdc_avf)
            ser = soft_error_rate(fit_by_mode, avf_by_mode, structure)
            sdc += ser.sdc_fit / len(studies)
            due += ser.due_fit / len(studies)
        results.append(
            DesignResult(point, sdc, due, point.area_overhead(word_bits))
        )
    return results


def choose_design(
    results: Sequence[DesignResult],
    *,
    sdc_target: float,
    due_target: Optional[float] = None,
) -> Optional[DesignResult]:
    """Cheapest design meeting the SDC (and optionally DUE) target.

    Ties on area break toward lower SDC.  Returns None when no candidate
    meets the targets — the signal to strengthen the palette.
    """
    feasible = [
        r for r in results
        if r.sdc_rate <= sdc_target
        and (due_target is None or r.due_rate <= due_target)
    ]
    if not feasible:
        return None
    return min(feasible, key=lambda r: (r.area_overhead, r.sdc_rate))
