"""Tests for the memory-injection validation machinery."""

import numpy as np
import pytest

from repro.arch import Apu, GlobalMemory, ProgramBuilder, imm, s, v
from repro.core import AvfStudy
from repro.core.intervals import AceClass
from repro.faultinject.validation import ValidationResult, validate_memory_avf

ACE = int(AceClass.ACE)


class TestMemoryInjectionHook:
    def _copy_program(self):
        p = ProgramBuilder()
        p.shl(v(2), v(0), imm(2))
        p.iadd(v(3), v(2), s(2))
        p.load(v(4), v(3))
        p.iadd(v(5), v(2), s(3))
        p.store(v(4), v(5))
        return p.build()

    def _run(self, inject=None):
        mem = GlobalMemory()
        a = mem.alloc("a", 64)
        b = mem.alloc("b", 64)
        mem.view_u32("a")[:] = np.arange(16, dtype=np.uint32)
        apu = Apu(memory=mem, n_cus=1)
        if inject:
            apu.inject_memory_fault(*inject)
        apu.launch(self._copy_program(), 16, [a, b])
        apu.finish()
        apu._apply_mem_injections()
        return mem.view_u32("b").copy(), a, b

    def test_flip_input_before_read_corrupts(self):
        # Establish the input address from a clean run first.
        out, a, b = self._run()
        corrupted, _, _ = self._run(inject=(a, 1, 0))
        assert corrupted[0] == (np.arange(16)[0] ^ 1)

    def test_flip_output_after_store_corrupts_readback(self):
        # The copy kernel stores early; a flip later in the run corrupts
        # the value the host reads back.
        out, a, b = self._run()
        corrupted, _, _ = self._run(inject=(b, 0x80, 155))
        assert corrupted[0] != out[0]

    def test_flip_scheduled_after_simulation_never_lands(self):
        out, a, b = self._run()
        clean, _, _ = self._run(inject=(b, 0x80, 10**6))
        assert (clean == out).all()

    def test_flip_outside_buffers_is_masked(self):
        out, a, b = self._run()
        clean, _, _ = self._run(inject=(8, 1, 0))  # below first allocation
        assert (clean == out).all()

    def test_out_of_range_address_ignored(self):
        out, a, b = self._run()
        clean, _, _ = self._run(inject=(10**9, 1, 0))
        assert (clean == out).all()


class TestMemoryLifetimes:
    def test_input_ace_until_last_live_read(self):
        mem = GlobalMemory()
        a = mem.alloc("a", 64)
        b = mem.alloc("b", 64)
        p = ProgramBuilder()
        p.shl(v(2), v(0), imm(2))
        p.iadd(v(3), v(2), s(2))
        p.load(v(4), v(3))
        p.iadd(v(5), v(2), s(3))
        p.store(v(4), v(5))
        apu = Apu(memory=mem, n_cus=1)
        apu.launch(p.build(), 16, [a, b])
        study = AvfStudy(apu, [mem.buffer("b")])
        lt = study.memory_lifetimes((a, 64))
        # Every input byte was consumed live exactly once: ACE from cycle 0
        # to the load.
        assert all(iset.total(ACE) > 0 for iset in lt.byte_isets)

    def test_output_ace_until_end(self):
        mem = GlobalMemory()
        b = mem.alloc("b", 64)
        p = ProgramBuilder()
        p.shl(v(2), v(0), imm(2))
        p.iadd(v(5), v(2), s(2))
        p.store(v(0), v(5))
        apu = Apu(memory=mem, n_cus=1)
        apu.launch(p.build(), 16, [b])
        study = AvfStudy(apu, [mem.buffer("b")])
        lt = study.memory_lifetimes((b, 64))
        end = study.end_cycle
        for iset in lt.byte_isets:
            ivals = iset.intervals()
            assert ivals
            assert ivals[-1][1] == end  # ACE through the host readback

    def test_scratch_not_ace(self):
        mem = GlobalMemory()
        scratch = mem.alloc("scratch", 64)
        out = mem.alloc("out", 64)
        p = ProgramBuilder()
        p.shl(v(2), v(0), imm(2))
        p.iadd(v(5), v(2), s(2))
        p.store(v(0), v(5))            # scratch: never read
        p.iadd(v(6), v(2), s(3))
        p.store(v(0), v(6))
        apu = Apu(memory=mem, n_cus=1)
        apu.launch(p.build(), 16, [scratch, out])
        study = AvfStudy(apu, [mem.buffer("out")])
        lt = study.memory_lifetimes((scratch, 64))
        assert all(iset.total_at_least(1) == 0 for iset in lt.byte_isets)


class TestValidationCampaign:
    def test_small_campaign(self):
        r = validate_memory_avf("vectoradd", n_injections=30, n_cus=1)
        assert r.n_injections == 30
        assert r.sdc + r.masked + r.crash == 30
        assert 0 <= r.model_avf <= 1
        assert r.observed_rate <= r.model_avf + 3 * r.stderr + 0.05

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError):
            validate_memory_avf("nope")

    def test_journaled_run_matches_and_resumes(self, tmp_path):
        plain = validate_memory_avf("vectoradd", n_injections=12, n_cus=1)
        journal = tmp_path / "val.jsonl"
        journaled = validate_memory_avf(
            "vectoradd", n_injections=12, n_cus=1, journal=journal
        )
        assert journaled == plain
        assert journal.read_text().count("\n") == 12
        # A resumed run replays the journal instead of re-injecting.
        resumed = validate_memory_avf(
            "vectoradd", n_injections=12, n_cus=1, journal=journal
        )
        assert resumed == plain

    def test_clean_run_has_no_failures(self):
        r = validate_memory_avf("vectoradd", n_injections=5, n_cus=1)
        assert r.n_failed == 0 and r.failures == {} and r.hang == 0

    def test_result_statistics(self):
        r = ValidationResult("x", (0, 10), 0.5, 100, sdc=25, masked=75)
        assert r.observed_rate == 0.25
        assert r.stderr == pytest.approx(np.sqrt(0.25 * 0.75 / 100))
