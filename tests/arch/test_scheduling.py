"""Tests for wavefront scheduling, latency hiding and CU distribution."""

import pytest

from repro.arch import Apu, GlobalMemory, ProgramBuilder, imm, s, v


def _memory_bound_kernel():
    """Each thread issues a chain of dependent loads from its own lines."""
    p = ProgramBuilder()
    p.shl(v(2), v(0), imm(6))          # one line per thread
    p.iadd(v(2), v(2), s(2))
    for _ in range(4):
        p.load(v(3), v(2))
        p.iadd(v(2), v(2), imm(0))     # keep the chain alive
    return p.build()


class TestLatencyHiding:
    def test_more_wavefronts_hide_memory_latency(self):
        """Round-robin issue overlaps one wavefront's stalls with others'
        work: 4 wavefronts on one CU finish in far less than 4x the time
        of 1 wavefront."""
        def cycles(n_threads):
            mem = GlobalMemory()
            buf = mem.alloc("buf", 1 << 14)
            apu = Apu(memory=mem, n_cus=1)
            stats = apu.launch(_memory_bound_kernel(), n_threads, [buf])
            return stats.cycles

        one = cycles(16)
        four = cycles(64)
        assert four < 2.5 * one

    def test_multiple_cus_split_work(self):
        def cycles(n_cus):
            mem = GlobalMemory()
            buf = mem.alloc("buf", 1 << 16)
            apu = Apu(memory=mem, n_cus=n_cus)
            stats = apu.launch(_memory_bound_kernel(), 256, [buf])
            return stats.cycles

        assert cycles(4) < cycles(1)


class TestSchedulingFairness:
    def test_round_robin_interleaves_wavefronts(self):
        mem = GlobalMemory()
        buf = mem.alloc("buf", 4096)
        p = ProgramBuilder()
        for _ in range(8):
            p.iadd(v(2), v(2), imm(1))
        apu = Apu(memory=mem, n_cus=1)
        apu.launch(p.build(), 32, [buf])
        # Two wavefronts of pure ALU work: their records must interleave
        # rather than run one wavefront to completion first.
        wf_seq = [r.wf for r in apu.records]
        first_wf1 = wf_seq.index(1)
        assert first_wf1 < 8  # wavefront 1 issues before wavefront 0 retires

    def test_resident_limit_admits_later_wavefronts(self):
        mem = GlobalMemory()
        buf = mem.alloc("buf", 1 << 14)
        apu = Apu(memory=mem, n_cus=1, max_resident_wavefronts=2)
        stats = apu.launch(_memory_bound_kernel(), 16 * 6, [buf])
        # All six wavefronts ran to completion despite only 2 being
        # resident at a time.
        assert stats.n_wavefronts == 6
        assert len({r.wf for r in apu.records}) == 6

    def test_cycle_skipping_when_stalled(self):
        """With a single stalled wavefront the clock jumps to its ready
        time instead of ticking cycle by cycle (no livelock, exact time)."""
        mem = GlobalMemory()
        buf = mem.alloc("buf", 4096)
        p = ProgramBuilder()
        p.iadd(v(2), imm(0), s(2))
        p.load(v(3), v(2))
        p.load(v(4), v(2))
        apu = Apu(memory=mem, n_cus=1)
        stats = apu.launch(p.build(), 16, [buf])
        # miss latency (4+24+120) dominates; total well under 1000 proves
        # the run loop advanced, and well over the latency proves it waited.
        assert 140 <= stats.cycles <= 400


class TestLaunchEdgeCases:
    def test_zero_threads_rejected(self):
        apu = Apu(memory=GlobalMemory())
        p = ProgramBuilder().build()
        with pytest.raises(ValueError):
            apu.launch(p, 0)

    def test_single_thread_masks_other_lanes(self):
        mem = GlobalMemory()
        buf = mem.alloc("buf", 64)
        p = ProgramBuilder()
        p.shl(v(2), v(0), imm(2))
        p.iadd(v(2), v(2), s(2))
        p.store(imm(7), v(2))
        apu = Apu(memory=mem)
        apu.launch(p.build(), 1, [buf])
        apu.finish()
        got = mem.view_u32("buf")
        assert got[0] == 7
        assert (got[1:16] == 0).all()

    def test_launch_stats_accumulate(self):
        mem = GlobalMemory()
        buf = mem.alloc("buf", 64)
        p = ProgramBuilder()
        p.iadd(v(2), imm(0), s(2))
        p.store(imm(1), v(2))
        apu = Apu(memory=mem)
        apu.launch(p.build(), 16, [buf], name="first")
        apu.launch(p.build(), 16, [buf], name="second")
        assert [l.name for l in apu.launches] == ["first", "second"]
        assert apu.launches[1].start_cycle >= apu.launches[0].end_cycle
