"""Service hardening shared by both HTTP surfaces (fabric RPC, report).

A production serving layer must *degrade*, not die: when the offered
load exceeds what the process can do, the cheapest correct answer is a
fast, well-formed rejection the client can back off on.  This module
packages the four classic mechanisms behind one small API so the fabric
coordinator (:mod:`repro.runtime.fabric.coordinator`) and the report
dashboard (:mod:`repro.report.service`) share identical semantics:

* **admission control** (:class:`AdmissionGate`) — a bounded number of
  requests execute concurrently; a bounded queue absorbs short bursts;
  anything beyond that is *shed* with 503 + ``Retry-After`` instead of
  piling up threads until the process falls over.
* **rate limiting** (:class:`TokenBucket`) — a steady-state requests/s
  ceiling with burst credit; excess traffic gets 429 + ``Retry-After``.
* **deadline enforcement** — fabric envelopes already carry
  ``deadline_ms``; a request whose client has certainly stopped waiting
  is rejected cheaply (504) instead of executed for nobody.
* **body caps** (:meth:`ServiceGuard.read_body`) — Content-Length is
  validated (negative/malformed → 400, oversized → 413) *before* any
  bytes are read, and the read itself is chunk-bounded (staticcheck
  rule F304 holds handlers to this).

:class:`CircuitBreaker` rounds the set out for *dependency* failure:
the report service wraps store access in one so a corrupted or vanished
store file flips the service into a degraded mode (cached page, fast
503s) instead of hammering a broken dependency on every request.

Everything is observable through :mod:`repro.obs`: per-guard counters
(``guard.<name>.admitted/shed/rate_limited/deadline_expired/
body_rejected``) and a breaker state gauge (0 closed / 1 half-open /
2 open).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, Optional

from ..obs import get_metrics

__all__ = [
    "AdmissionGate",
    "CircuitBreaker",
    "GuardConfig",
    "GuardRejection",
    "ServiceGuard",
    "TokenBucket",
]

#: chunk size for capped body reads (bounds a single recv, not the body)
_READ_CHUNK = 65536


class GuardRejection(Exception):
    """A request the guard refused; carries the HTTP reply to send.

    ``status`` is the HTTP status code (400/413/429/503/504),
    ``retry_after`` the seconds to advertise in a ``Retry-After``
    header (None = no header: the client should not simply retry).
    """

    def __init__(
        self,
        status: int,
        reason: str,
        *,
        retry_after: Optional[float] = None,
    ) -> None:
        super().__init__(reason)
        self.status = status
        self.reason = reason
        self.retry_after = retry_after

    def body(self) -> Dict[str, Any]:
        """The well-formed JSON body every rejected request receives."""
        payload: Dict[str, Any] = {
            "error": self.reason, "status": self.status,
        }
        if self.retry_after is not None:
            payload["retry_after"] = self.retry_after
        return payload


@dataclass(frozen=True)
class GuardConfig:
    """Tuning knobs for one :class:`ServiceGuard` (see docs/resilience.md)."""

    #: requests executing concurrently before new ones queue
    max_inflight: int = 8
    #: requests allowed to wait for a slot; beyond this they are shed
    max_queue: int = 16
    #: longest a request may wait in the queue before being shed
    queue_timeout: float = 1.0
    #: steady-state requests/second (0 = rate limiting disabled)
    rate: float = 0.0
    #: burst credit on top of the steady rate
    burst: float = 10.0
    #: largest accepted request body; larger Content-Lengths get 413
    max_body_bytes: int = 8 << 20
    #: seconds advertised in Retry-After on 429/503 rejections
    retry_after: float = 0.5
    #: per-connection socket timeout (bounds slow reads/writes)
    socket_timeout: float = 30.0

    def __post_init__(self) -> None:
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if self.max_queue < 0:
            raise ValueError("max_queue must be >= 0")
        for name in (
            "queue_timeout", "rate", "burst", "retry_after",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if self.max_body_bytes < 1:
            raise ValueError("max_body_bytes must be >= 1")
        if self.socket_timeout <= 0:
            raise ValueError("socket_timeout must be > 0")


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/s, up to ``burst`` banked.

    ``rate <= 0`` disables the bucket (every take succeeds).  The clock
    is injectable so tests are deterministic.
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.rate = rate
        self.burst = max(burst, 1.0)
        self._clock = clock
        self._tokens = self.burst
        self._last = clock()
        self._lock = threading.Lock()

    def try_take(self, cost: float = 1.0) -> bool:
        """Spend ``cost`` tokens if available; False means rate-limited."""
        if self.rate <= 0:
            return True
        with self._lock:
            now = self._clock()
            self._tokens = min(
                self.burst, self._tokens + (now - self._last) * self.rate
            )
            self._last = now
            if self._tokens >= cost:
                self._tokens -= cost
                return True
            return False


class AdmissionGate:
    """Bounded concurrency plus a bounded wait queue.

    ``try_enter`` returns False — *immediately* when the queue is full,
    after at most ``timeout`` seconds otherwise — instead of blocking
    unboundedly; that refusal is what the guard turns into a 503.
    """

    def __init__(self, max_inflight: int, max_queue: int) -> None:
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self._cond = threading.Condition()
        self._inflight = 0
        self._waiting = 0

    def try_enter(self, timeout: float) -> bool:
        with self._cond:
            if self._inflight < self.max_inflight:
                self._inflight += 1
                return True
            if self._waiting >= self.max_queue:
                return False
            self._waiting += 1
            deadline = time.monotonic() + timeout
            try:
                while self._inflight >= self.max_inflight:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                    self._cond.wait(remaining)
                self._inflight += 1
                return True
            finally:
                self._waiting -= 1

    def leave(self) -> None:
        with self._cond:
            self._inflight -= 1
            self._cond.notify()

    @property
    def inflight(self) -> int:
        with self._cond:
            return self._inflight


class CircuitBreaker:
    """Closed → open after ``failure_threshold`` consecutive failures;
    half-open (one probe) after ``reset_after`` seconds; a probe success
    closes it again, a probe failure re-opens it.

    ``gauge`` names an obs gauge kept at 0 (closed) / 1 (half-open) /
    2 (open) so dashboards can watch the breaker flip.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    _GAUGE_VALUE = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}

    def __init__(
        self,
        *,
        failure_threshold: int = 3,
        reset_after: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
        gauge: Optional[str] = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_after < 0:
            raise ValueError("reset_after must be >= 0")
        self.failure_threshold = failure_threshold
        self.reset_after = reset_after
        self._clock = clock
        self._gauge = gauge
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._set_gauge()

    def _set_gauge(self) -> None:
        if self._gauge is None:
            return
        mx = get_metrics()
        if mx:
            mx.gauge(self._gauge).set(self._GAUGE_VALUE[self._state])

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def allow(self) -> bool:
        """Whether the protected call may proceed right now."""
        with self._lock:
            if self._state == self.CLOSED:
                return True
            if self._state == self.OPEN:
                if self._clock() - self._opened_at >= self.reset_after:
                    # one probe gets through; the rest keep failing fast
                    self._state = self.HALF_OPEN
                    self._set_gauge()
                    return True
                return False
            return False  # half-open: a probe is already in flight

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            if self._state != self.CLOSED:
                self._state = self.CLOSED
                self._set_gauge()

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            tripped = (
                self._state == self.HALF_OPEN
                or self._failures >= self.failure_threshold
            )
            if tripped and self._state != self.OPEN:
                self._state = self.OPEN
                self._set_gauge()
            if tripped:
                self._opened_at = self._clock()


class ServiceGuard:
    """One HTTP surface's admission control, rate limit and body cap.

    ``name`` namespaces the metrics (``guard.<name>.*``) so the fabric
    and report guards stay distinguishable in one registry.
    """

    def __init__(
        self, name: str, config: Optional[GuardConfig] = None
    ) -> None:
        self.name = name
        self.config = config or GuardConfig()
        self._gate = AdmissionGate(
            self.config.max_inflight, self.config.max_queue
        )
        self._bucket = TokenBucket(self.config.rate, self.config.burst)

    def _count(self, event: str, n: int = 1) -> None:
        mx = get_metrics()
        if mx:
            mx.counter(f"guard.{self.name}.{event}").inc(n)

    @property
    def inflight(self) -> int:
        return self._gate.inflight

    # -- admission -----------------------------------------------------------

    def acquire(self, timeout: Optional[float] = None) -> None:
        """Take one admission slot or raise the 429/503 rejection.

        Exposed for tests that want to hold slots open; production code
        uses :meth:`admit`.
        """
        if not self._bucket.try_take():
            self._count("rate_limited")
            raise GuardRejection(
                429, "rate limit exceeded",
                retry_after=self.config.retry_after,
            )
        wait = self.config.queue_timeout if timeout is None else timeout
        if not self._gate.try_enter(wait):
            self._count("shed")
            raise GuardRejection(
                503, "server at capacity; request shed",
                retry_after=self.config.retry_after,
            )
        self._count("admitted")

    def release(self) -> None:
        self._gate.leave()

    @contextmanager
    def admit(self) -> Iterator[None]:
        """Admission-control one request; raises :class:`GuardRejection`
        (429 rate-limited / 503 shed) instead of admitting."""
        self.acquire()
        try:
            yield
        finally:
            self.release()

    # -- deadline enforcement ------------------------------------------------

    def check_deadline(
        self, deadline_ms: Any, arrival: float
    ) -> None:
        """Reject (504) work whose client deadline elapsed since
        ``arrival`` (the ``time.monotonic()`` the request was received).

        The server cannot know network latency, so this is measured
        from receipt: by the time queueing alone has burned the whole
        ``deadline_ms`` budget, the client has certainly timed out and
        executing the request would be work for nobody.
        """
        try:
            budget_ms = float(deadline_ms)
        except (TypeError, ValueError):
            return  # no/unparsable deadline: nothing to enforce
        if budget_ms <= 0:
            return
        waited_ms = (time.monotonic() - arrival) * 1000.0
        if waited_ms >= budget_ms:
            self._count("deadline_expired")
            raise GuardRejection(
                504,
                f"deadline expired on arrival ({waited_ms:.0f}ms elapsed "
                f">= {budget_ms:.0f}ms budget)",
                retry_after=self.config.retry_after,
            )

    # -- body caps -----------------------------------------------------------

    def read_body(self, rfile: Any, headers: Any) -> bytes:
        """Read one request body, validating Content-Length *first*.

        Negative or malformed lengths get 400 and oversized ones 413
        before a single body byte is read; the read itself proceeds in
        bounded chunks so a lying client cannot balloon memory either.
        """
        raw = headers.get("Content-Length") or "0"
        try:
            length = int(raw)
        except (TypeError, ValueError):
            self._count("body_rejected")
            raise GuardRejection(
                400, f"malformed Content-Length {raw!r}"
            )
        if length < 0:
            self._count("body_rejected")
            raise GuardRejection(
                400, f"negative Content-Length {length}"
            )
        if length > self.config.max_body_bytes:
            self._count("body_rejected")
            raise GuardRejection(
                413,
                f"request body of {length} bytes exceeds the "
                f"{self.config.max_body_bytes}-byte cap",
            )
        chunks = []
        remaining = length
        while remaining > 0:
            chunk = rfile.read(min(remaining, _READ_CHUNK))
            if not chunk:
                self._count("body_rejected")
                raise GuardRejection(
                    400,
                    f"truncated request body ({length - remaining} of "
                    f"{length} bytes received)",
                )
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)
