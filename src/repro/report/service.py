"""Live HTML report service over a results store.

A tiny stdlib HTTP server (same idiom as the fabric coordinator RPC
server: :class:`ThreadingHTTPServer`, daemon threads, silent handler)
that renders the static report page on demand plus a small JSON API:

* ``GET /`` — the full HTML dashboard (same bytes as ``report build``)
* ``GET /healthz`` — liveness probe
* ``GET /api/summary`` — store row counts
* ``GET /api/query?workload=...&structure=...`` — filtered AVF rows;
  optional ``group_by=scheme,style`` + ``value=``/``agg=`` aggregate
* ``GET /api/mttf`` — stored Figure-2 rows

Each request opens a fresh read-only-in-spirit :class:`ResultStore`
handle, so the page always reflects the latest ingested results while
campaigns keep writing through WAL — this is what makes the dashboard
"live" without any push machinery.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from ..store import FILTER_COLUMNS, ResultStore, VALUE_COLUMNS
from .html import render_index

__all__ = ["ReportService"]

#: filter columns holding integers (query params arrive as strings)
_INT_COLUMNS = frozenset(("factor", "seed"))


def _parse_filters(query: str) -> Tuple[Dict[str, Any], Dict[str, str]]:
    """(store filters, control params) from a raw query string.

    Repeated parameters become IN-lists; unknown names raise KeyError so
    a typo'd dashboard URL fails with 400, not an empty chart.
    """
    filters: Dict[str, Any] = {}
    control: Dict[str, str] = {}
    for key, values in parse_qs(query, keep_blank_values=True).items():
        if key in ("group_by", "value", "agg", "limit", "order_by"):
            control[key] = values[-1]
            continue
        if key not in FILTER_COLUMNS:
            raise KeyError(f"unknown query parameter {key!r}")
        if key in _INT_COLUMNS:
            parsed: Any = [int(v) for v in values]
        else:
            parsed = list(values)
        filters[key] = parsed[0] if len(parsed) == 1 else parsed
    return filters, control


class _ReportHandler(BaseHTTPRequestHandler):
    """One dashboard request; the bound subclass carries ``service``."""

    timeout = 30.0
    protocol_version = "HTTP/1.1"
    service: "ReportService"

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        path = urlsplit(self.path).path
        query = urlsplit(self.path).query
        try:
            if path == "/healthz":
                self._reply(200, b"ok\n", "text/plain; charset=utf-8")
            elif path == "/":
                with self.service.open_store() as store:
                    page = render_index(store).encode("utf-8")
                self._reply(200, page, "text/html; charset=utf-8")
            elif path == "/api/summary":
                with self.service.open_store() as store:
                    self._reply_json(200, store.summary())
            elif path == "/api/mttf":
                with self.service.open_store() as store:
                    self._reply_json(200, {"rows": store.mttf_rows()})
            elif path == "/api/query":
                self._handle_query(query)
            else:
                self._reply_json(404, {"error": f"no route {path!r}"})
        except (KeyError, ValueError) as exc:
            self._reply_json(400, {"error": str(exc)})
        except Exception as exc:  # pragma: no cover - defensive
            self._reply_json(500, {"error": f"{type(exc).__name__}: {exc}"})

    def _handle_query(self, query: str) -> None:
        filters, control = _parse_filters(query)
        limit = int(control["limit"]) if "limit" in control else None
        order_by = control.get("order_by")
        with self.service.open_store() as store:
            result = store.query(
                order_by=order_by, limit=limit, **filters
            )
            if "group_by" in control:
                keys = tuple(
                    k for k in control["group_by"].split(",") if k
                )
                value = control.get("value", "sdc_avf")
                if value not in VALUE_COLUMNS:
                    raise KeyError(f"unknown value column {value!r}")
                grouped = result.group_by(
                    keys, value=value, agg=control.get("agg", "mean")
                )
                payload: Dict[str, Any] = {
                    "groups": [
                        {"key": list(k), "value": v}
                        for k, v in grouped.items()
                    ],
                    "value": value,
                    "agg": control.get("agg", "mean"),
                }
            else:
                payload = {"rows": result.to_dicts(), "count": len(result)}
        self._reply_json(200, payload)

    def _reply_json(self, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self._reply(status, body, "application/json")

    def _reply(self, status: int, body: bytes, ctype: str) -> None:
        try:
            self.send_response(status)
            self.send_header("Content-Type", ctype)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionError, OSError):
            pass  # client went away mid-reply; nothing to salvage

    def log_message(self, fmt: str, *args: Any) -> None:
        pass  # keep request noise out of CLI output


class ReportService:
    """Serve the live dashboard for one store file.

    >>> with ReportService("results.sqlite") as svc:
    ...     print(svc.endpoint)   # http://127.0.0.1:<port>

    ``port=0`` binds an ephemeral port (the default, test-friendly).
    The server runs in a daemon thread; ``stop()`` (or the context
    manager) shuts it down cleanly.
    """

    def __init__(
        self,
        store_path: Any,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.store_path = Path(store_path)
        self._host = host
        self._port = port
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    def open_store(self) -> ResultStore:
        """A fresh store handle for one request (WAL readers don't block
        writers, so campaigns can keep ingesting while we serve)."""
        return ResultStore(self.store_path)

    def start(self) -> None:
        if self._server is not None:
            return
        handler = type(
            "_BoundReportHandler", (_ReportHandler,), {"service": self}
        )
        self._server = ThreadingHTTPServer(
            (self._host, self._port), handler
        )
        self._server.daemon_threads = True
        self._port = self._server.server_address[1]
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-report",
            daemon=True,
        )
        self._thread.start()

    def stop(self) -> None:
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._server = None
        self._thread = None

    @property
    def address(self) -> Tuple[str, int]:
        return (self._host, self._port)

    @property
    def endpoint(self) -> str:
        return f"http://{self._host}:{self._port}"

    def __enter__(self) -> "ReportService":
        self.start()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.stop()
