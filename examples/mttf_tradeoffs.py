"""Spatial vs temporal multi-bit fault MTTFs (paper Figure 2).

Why does the paper model only *spatial* MBFs?  Because at realistic raw
fault rates, one strike flipping several adjacent bits is overwhelmingly
more likely to defeat protection than two independent strikes landing on
companion bits — even assuming data lives in the cache forever.

Run with:  python examples/mttf_tradeoffs.py
"""

from repro.core import figure2_sweep


def main() -> None:
    print("MTTF of a 32MB cache (hours), by raw fault rate (FIT/Mbit)")
    hdr = (f"{'raw rate':>9} {'sMBF 0.1%':>12} {'sMBF 5%':>12} "
           f"{'tMBF inf-life':>14} {'tMBF 100yr':>14}")
    print(hdr)
    print("-" * len(hdr))
    for row in figure2_sweep():
        print(
            f"{row.raw_fit_per_mbit:9.2f} {row.mttf_smbf_01pct:12.3e} "
            f"{row.mttf_smbf_5pct:12.3e} {row.mttf_tmbf_unbounded:14.3e} "
            f"{row.mttf_tmbf_100yr:14.3e}"
        )
    print("\nspatial-MBF MTTFs sit far below temporal-MBF MTTFs at every")
    print("rate; with the realistic 100-year lifetime bound the gap reaches")
    print("6-8 orders of magnitude, matching Figure 2 of the paper.")


if __name__ == "__main__":
    main()
