"""Named task entrypoints: how a fabric node rebuilds a task function.

Remote workers cannot receive callables — the fabric ships a
:class:`~repro.runtime.fabric.protocol.JobSpec` (an entrypoint *kind*
plus a JSON context) and every node rebuilds the task function locally
from this registry.  Each entrypoint provides:

``build(ctx)``
    Construct the task function once per job (workers cache it by the
    job digest, so e.g. the injection entrypoint pays its golden run a
    single time per benchmark per node).

``encode(payload)``
    Convert a driver-side task payload (which may be a rich object like
    an :class:`~repro.faultinject.campaign.InjectionSpec`) into the
    JSON form shipped in a lease; the built function receives exactly
    this JSON form.

Registered kinds:

* ``stub`` — arithmetic self-test tasks (the fabric's own test suite and
  smoke checks; no simulator involved).
* ``injection`` — one fault injection of a
  :class:`~repro.faultinject.campaign.BenchmarkCampaign`.
* ``sweep`` — one (layout, scheme, mode) cell of an AVF sweep grid
  (:mod:`repro.core.sweep`).
* ``sweep_grid`` — one (workload, layout, scheme, mode) cell of a
  cross-benchmark sweep (:func:`repro.experiments.sweep_benchmarks`):
  the payload names its workload, so cells of *different* benchmarks
  ride one job and can land on any node; each node memoises one study
  per workload for the life of the job.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Tuple

from .protocol import JobSpec

__all__ = [
    "Entrypoint",
    "ENTRYPOINTS",
    "register_entrypoint",
    "resolve",
    "stub_job",
    "injection_job",
    "sweep_job",
    "sweep_grid_job",
]


@dataclass(frozen=True)
class Entrypoint:
    """One named task kind any fabric node can rebuild from JSON."""

    kind: str
    build: Callable[[Dict[str, Any]], Callable[[Any], Any]]
    encode: Callable[[Any], Any]


ENTRYPOINTS: Dict[str, Entrypoint] = {}


def register_entrypoint(
    kind: str,
    build: Callable[[Dict[str, Any]], Callable[[Any], Any]],
    encode: Callable[[Any], Any] = lambda payload: payload,
) -> Entrypoint:
    """Register (or replace) a task entrypoint under ``kind``."""
    ep = Entrypoint(kind=kind, build=build, encode=encode)
    ENTRYPOINTS[kind] = ep
    return ep


def resolve(job: JobSpec) -> Entrypoint:
    ep = ENTRYPOINTS.get(job.kind)
    if ep is None:
        raise KeyError(
            f"unknown fabric task kind {job.kind!r}; known: "
            + ", ".join(sorted(ENTRYPOINTS))
        )
    return ep


# -- stub: fabric self-test tasks --------------------------------------------


def _build_stub(ctx: Dict[str, Any]) -> Callable[[Any], Any]:
    mul = int(ctx.get("mul", 2))
    sleep = float(ctx.get("sleep", 0.0))

    def fn(payload: Any) -> int:
        if sleep:
            time.sleep(sleep)
        return int(payload) * mul

    return fn


def stub_job(mul: int = 2, sleep: float = 0.0) -> JobSpec:
    """Arithmetic self-test job: task ``i`` returns ``i * mul``."""
    ctx: Dict[str, Any] = {"mul": mul}
    if sleep:
        ctx["sleep"] = sleep
    return JobSpec("stub", ctx)


register_entrypoint("stub", _build_stub)


# -- injection: one fault injection of a benchmark campaign ------------------


def _build_injection(ctx: Dict[str, Any]) -> Callable[[Any], Any]:
    # Lazy import: tasks must stay importable from worker nodes without
    # dragging the whole campaign stack in until a job actually needs it.
    from ...faultinject.campaign import (
        DEFAULT_MAX_CYCLES,
        InjectionSpec,
        _Runner,
    )
    from ...workloads.suite import REGISTRY

    benchmark = ctx["benchmark"]
    if benchmark not in REGISTRY:
        raise KeyError(f"unknown benchmark {benchmark!r}")
    runner = _Runner(
        REGISTRY[benchmark],
        int(ctx.get("seed", 0)),
        int(ctx.get("n_cus", 2)),
        max_cycles=int(ctx.get("max_cycles", DEFAULT_MAX_CYCLES)),
    )

    def fn(payload: Any) -> str:
        return runner.inject(InjectionSpec.from_dict(payload))

    return fn


def _encode_injection(payload: Any) -> Any:
    if hasattr(payload, "to_dict"):
        return payload.to_dict()
    return payload


def injection_job(
    benchmark: str, *, seed: int = 0, n_cus: int = 2,
    max_cycles: int = 2_000_000,
) -> JobSpec:
    """One benchmark's injection context (golden run rebuilt per node)."""
    return JobSpec(
        "injection",
        {
            "benchmark": benchmark,
            "seed": seed,
            "n_cus": n_cus,
            "max_cycles": max_cycles,
        },
    )


register_entrypoint("injection", _build_injection, _encode_injection)


# -- sweep: one cell of an AVF sweep grid ------------------------------------


def _encode_mode(mode: Any) -> Dict[str, Any]:
    return {
        "name": mode.name,
        "offsets": [[int(r), int(c)] for r, c in mode.offsets],
    }


def _decode_mode(data: Dict[str, Any]):
    from ...core.faultmodes import FaultMode

    return FaultMode(
        str(data["name"]),
        tuple((int(r), int(c)) for r, c in data["offsets"]),
    )


def _encode_sweep_cell(payload: Any) -> Any:
    if isinstance(payload, dict):
        return payload
    from ...core.protection import SCHEMES
    from ...core.sweep import _scheme_label

    style, factor, scheme, mode = payload
    label = _scheme_label(scheme)
    if SCHEMES.get(label) is not scheme:
        raise ValueError(
            f"fabric sweeps can only ship registry protection schemes; "
            f"{label!r} is not (or does not match) an entry in "
            "repro.core.protection.SCHEMES"
        )
    return {
        "style": style.value,
        "factor": int(factor),
        "scheme": label,
        "mode": _encode_mode(mode),
    }


def _build_sweep(ctx: Dict[str, Any]) -> Callable[[Any], Any]:
    from dataclasses import asdict

    from ...core.analysis import AvfStudy
    from ...core.layout import Interleaving
    from ...core.protection import SCHEMES
    from ...core.sweep import SweepPoint
    from ...workloads import run

    structure = ctx["structure"]
    apu_kwargs = None
    if ctx.get("scaled", True):
        from ...experiments import scaled_apu_kwargs

        apu_kwargs = scaled_apu_kwargs()
    result = run(
        ctx["workload"], seed=int(ctx.get("seed", 0)),
        n_cus=int(ctx.get("n_cus", 4)), apu_kwargs=apu_kwargs,
    )
    study = AvfStudy(result.apu, result.output_ranges)
    domain_bytes = int(ctx.get("domain_bytes", 4))
    styles = {s.value: s for s in Interleaving}

    def fn(payload: Any) -> Dict[str, Any]:
        style = styles[payload["style"]]
        factor = int(payload["factor"])
        scheme = SCHEMES[payload["scheme"]]
        mode = _decode_mode(payload["mode"])
        if structure == "vgpr":
            res = study.vgpr_avf(mode, scheme, style=style, factor=factor)
        else:
            res = study.cache_avf(
                structure, mode, scheme,
                style=style, factor=factor, domain_bytes=domain_bytes,
            )
        return asdict(SweepPoint.from_result(structure, style, factor, res))

    return fn


def sweep_job(
    workload: str,
    structure: str,
    *,
    seed: int = 0,
    n_cus: int = 4,
    scaled: bool = True,
    domain_bytes: int = 4,
) -> JobSpec:
    """One workload's sweep context: any node can rebuild the study and
    measure arbitrary (layout, scheme, mode) cells of its grid."""
    return JobSpec(
        "sweep",
        {
            "workload": workload,
            "structure": structure,
            "seed": seed,
            "n_cus": n_cus,
            "scaled": scaled,
            "domain_bytes": domain_bytes,
        },
    )


register_entrypoint("sweep", _build_sweep, _encode_sweep_cell)


# -- sweep_grid: one cell of a cross-benchmark sweep --------------------------


def _encode_grid_cell(payload: Any) -> Any:
    if isinstance(payload, dict):
        return payload
    workload, cell = payload
    return {"workload": str(workload), "cell": _encode_sweep_cell(cell)}


def _build_sweep_grid(ctx: Dict[str, Any]) -> Callable[[Any], Any]:
    from dataclasses import asdict

    from ...core.analysis import AvfStudy
    from ...core.layout import Interleaving
    from ...core.protection import SCHEMES
    from ...core.sweep import SweepPoint
    from ...workloads import run

    structure = ctx["structure"]
    seed = int(ctx.get("seed", 0))
    n_cus = int(ctx.get("n_cus", 4))
    domain_bytes = int(ctx.get("domain_bytes", 4))
    apu_kwargs = None
    if ctx.get("scaled", True):
        from ...experiments import scaled_apu_kwargs

        apu_kwargs = scaled_apu_kwargs()
    styles = {s.value: s for s in Interleaving}
    # One simulation per workload per node: workers cache the built
    # function by job digest, so this dict lives as long as the job and
    # every cell of a workload after the first is pure analysis.
    studies: Dict[str, AvfStudy] = {}

    def study_for(workload: str) -> AvfStudy:
        if workload not in studies:
            result = run(
                workload, seed=seed, n_cus=n_cus, apu_kwargs=apu_kwargs
            )
            studies[workload] = AvfStudy(result.apu, result.output_ranges)
        return studies[workload]

    def fn(payload: Any) -> Dict[str, Any]:
        cell = payload["cell"]
        study = study_for(str(payload["workload"]))
        style = styles[cell["style"]]
        factor = int(cell["factor"])
        scheme = SCHEMES[cell["scheme"]]
        mode = _decode_mode(cell["mode"])
        if structure == "vgpr":
            res = study.vgpr_avf(mode, scheme, style=style, factor=factor)
        else:
            res = study.cache_avf(
                structure, mode, scheme,
                style=style, factor=factor, domain_bytes=domain_bytes,
            )
        return asdict(SweepPoint.from_result(structure, style, factor, res))

    return fn


def sweep_grid_job(
    structure: str,
    *,
    seed: int = 0,
    n_cus: int = 4,
    scaled: bool = True,
    domain_bytes: int = 4,
) -> JobSpec:
    """Cross-benchmark sweep context: cells carry their own workload
    name, so one job covers the whole benchmark grid and any node can
    serve any cell (rebuilding at most one study per workload)."""
    return JobSpec(
        "sweep_grid",
        {
            "structure": structure,
            "seed": seed,
            "n_cus": n_cus,
            "scaled": scaled,
            "domain_bytes": domain_bytes,
        },
    )


register_entrypoint("sweep_grid", _build_sweep_grid, _encode_grid_cell)


#: sweep-cell payload tuple shape (documented for wiring code)
SweepCell = Tuple[Any, int, Any, Any]
