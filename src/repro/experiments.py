"""Standard configuration shared by the paper-reproduction experiments.

The paper's APU has a 16KB L1 per CU and a 256KB L2, exercised by full
Rodinia / AMD SDK / Mantevo datasets (megabytes of traffic over billions of
cycles).  Our workloads are scaled-down analogues, so the experiments scale
the caches by the same factor — 4KB L1s and a 32KB L2 — preserving the
working-set-to-capacity ratios that AVF behaviour actually depends on.
(The architectural defaults in :mod:`repro.arch.cache` remain the paper's
sizes; only the experiment harness uses the scaled pair.)
"""

from __future__ import annotations

from typing import Dict

from .arch.cache import CacheConfig
from .core.analysis import AvfStudy
from .workloads import run

__all__ = [
    "SCALED_L1",
    "SCALED_L2",
    "scaled_apu_kwargs",
    "build_study",
    "StudyCache",
]

#: 4KB, 4-way L1 per CU (the paper's 16KB scaled with the datasets).
SCALED_L1 = CacheConfig(n_sets=16, n_ways=4, line_bytes=64, hit_latency=4)
#: 32KB, 8-way shared L2 (the paper's 256KB scaled with the datasets).
SCALED_L2 = CacheConfig(n_sets=64, n_ways=8, line_bytes=64, hit_latency=24)


def scaled_apu_kwargs() -> Dict:
    """Apu constructor overrides for the experiment configuration."""
    return {"l1_config": SCALED_L1, "l2_config": SCALED_L2}


def build_study(name: str, *, seed: int = 0, n_cus: int = 4) -> AvfStudy:
    """Run a workload under the experiment configuration and open a study."""
    result = run(name, seed=seed, n_cus=n_cus, apu_kwargs=scaled_apu_kwargs())
    return AvfStudy(result.apu, result.output_ranges)


class StudyCache:
    """Memoised :func:`build_study` — one simulation per workload, reused
    across every (fault mode, scheme, interleaving) measurement."""

    def __init__(self) -> None:
        self._cache: Dict[str, AvfStudy] = {}

    def __call__(self, name: str) -> AvfStudy:
        if name not in self._cache:
            self._cache[name] = build_study(name)
        return self._cache[name]
