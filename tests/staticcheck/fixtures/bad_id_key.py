"""D104 fixture: id()-keyed lookups."""


def intern(objs):
    table = {}
    for obj in objs:
        table[id(obj)] = obj
    seed = {id(objs): 0}
    hit = table.get(id(objs))
    return table, seed, hit
