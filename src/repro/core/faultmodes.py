"""Fault modes: spatial multi-bit fault geometries (Sec. IV-A).

A *fault mode* is a specific pattern of flipped bits, expressed as a set of
(row, column) offsets in the physical bit array of a structure.  A *fault
group* is one concrete placement of the pattern; every placement that fits
inside the array is a distinct group.  The most common modes in SRAM — and
the ones the paper's evaluation uses throughout — are contiguous ``Mx1``
faults along a wordline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

__all__ = ["FaultMode", "MX1_MODES"]


@dataclass(frozen=True)
class FaultMode:
    """A multi-bit fault geometry.

    ``offsets`` are (row, col) displacements from the group origin; they must
    be unique and include (0, 0) after normalisation.  Use the constructors
    :meth:`linear` and :meth:`rect` for the common patterns.
    """

    name: str
    offsets: Tuple[Tuple[int, int], ...]

    def __post_init__(self) -> None:
        if not self.offsets:
            raise ValueError("a fault mode needs at least one bit")
        if len(set(self.offsets)) != len(self.offsets):
            raise ValueError("duplicate offsets in fault mode")
        min_r = min(r for r, _ in self.offsets)
        min_c = min(c for _, c in self.offsets)
        if (min_r, min_c) != (0, 0):
            norm = tuple(sorted((r - min_r, c - min_c) for r, c in self.offsets))
            object.__setattr__(self, "offsets", norm)
        else:
            object.__setattr__(self, "offsets", tuple(sorted(self.offsets)))

    @classmethod
    def linear(cls, m: int) -> "FaultMode":
        """Contiguous ``Mx1`` fault along a wordline."""
        if m < 1:
            raise ValueError("fault mode needs at least one bit")
        return cls(f"{m}x1", tuple((0, c) for c in range(m)))

    @classmethod
    def rect(cls, height: int, width: int) -> "FaultMode":
        """Rectangular ``HxW`` fault spanning adjacent wordlines."""
        if height < 1 or width < 1:
            raise ValueError("fault mode dimensions must be positive")
        return cls(
            f"{width}x{height}",
            tuple((r, c) for r in range(height) for c in range(width)),
        )

    @property
    def n_bits(self) -> int:
        """Number of bits flipped by a fault of this mode."""
        return len(self.offsets)

    @property
    def height(self) -> int:
        return 1 + max(r for r, _ in self.offsets)

    @property
    def width(self) -> int:
        return 1 + max(c for _, c in self.offsets)

    def is_linear(self) -> bool:
        """True for contiguous 1-row modes (the common SRAM wordline case)."""
        return self.offsets == tuple((0, c) for c in range(self.n_bits))


#: The contiguous wordline modes evaluated in the paper (1x1 through 8x1).
MX1_MODES: Tuple[FaultMode, ...] = tuple(FaultMode.linear(m) for m in range(1, 9))
