"""Fabric RPC client: deadlined HTTP/JSON calls with deterministic retry.

One :class:`RpcClient` per node.  Every call opens a fresh
``http.client.HTTPConnection`` with an explicit socket ``timeout`` (the
RPC's deadline — staticcheck rule F303 enforces that no fabric network
call is ever untimed), POSTs one request envelope to ``/rpc``, and
parses the response.  Transient failures — connection refused, timeout,
a chaos-injected partition — are retried with the campaign runtime's
deterministic backoff (:class:`~repro.runtime.retry.RetryPolicy.delay`
keyed on ``(method, seq)``), then surface as
:class:`~repro.runtime.fabric.protocol.RpcUnavailable` so callers can
degrade instead of crash.

The client is also where node-level chaos lands: a
:class:`~repro.runtime.chaos.ChaosPolicy` can drop, delay or duplicate
individual RPCs and black out whole windows of them (a partition),
keyed on the node's monotonic ``seq`` counter so one seed replays one
exact network failure schedule.
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
import time
from typing import Any, Dict, Optional, Tuple

from ...obs import get_metrics
from ..chaos import ChaosPolicy
from ..retry import RetryPolicy
from .protocol import RpcError, RpcUnavailable, encode_request

__all__ = ["RpcClient", "DEFAULT_RPC_TIMEOUT"]

#: default per-RPC wall-clock deadline (seconds)
DEFAULT_RPC_TIMEOUT = 5.0

#: default transport retry: 3 attempts, short deterministic backoff
DEFAULT_RPC_RETRY = RetryPolicy(
    max_attempts=3, backoff=0.05, backoff_factor=2.0, max_backoff=0.5,
    jitter=0.5,
)

#: HTTP statuses that mean "try again later", not "you are wrong":
#: 429 rate-limited, 503 shed by admission control, 504 deadline burn.
#: A shed worker backs off and retries; only protocol errors are fatal.
_RETRYABLE_STATUSES = frozenset((429, 503, 504))

#: ceiling on an advertised Retry-After the client will honour
_MAX_RETRY_AFTER = 5.0

#: chaos request bodies: big enough to trip any test-sized body cap,
#: and bytes that can never parse as a protocol envelope
_CHAOS_OVERSIZED_BODY = b"\x7b" * (256 * 1024)
_CHAOS_MALFORMED_BODY = b"\xff\xfenot json at all"


class RpcClient:
    """JSON-RPC-over-HTTP client for one fabric node."""

    def __init__(
        self,
        address: Tuple[str, int],
        node: str,
        *,
        timeout: float = DEFAULT_RPC_TIMEOUT,
        retry: Optional[RetryPolicy] = None,
        chaos: Optional[ChaosPolicy] = None,
    ) -> None:
        self.host, self.port = address
        self.node = node
        self.timeout = timeout
        self.retry = retry or DEFAULT_RPC_RETRY
        #: dev-only network fault injection (None = off)
        self.chaos = chaos
        self._seq = 0
        #: one client can be shared by a worker's main loop and its
        #: heartbeat thread; only the sequence counter needs guarding
        self._seq_lock = threading.Lock()

    @property
    def seq(self) -> int:
        """RPCs attempted so far (chaos key; monotonic per node)."""
        with self._seq_lock:
            return self._seq

    def call(
        self,
        method: str,
        params: Dict[str, Any],
        *,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Perform one RPC, retrying transient transport failures.

        Raises :class:`RpcUnavailable` once the retry budget is spent
        (the peer is down or partitioned) and :class:`RpcError` for
        non-transient protocol failures (which are never retried).
        """
        deadline = self.timeout if timeout is None else timeout
        attempt = 0
        while True:
            attempt += 1
            with self._seq_lock:
                seq = self._seq
                self._seq += 1
            try:
                return self._attempt(method, params, seq, deadline)
            except RpcUnavailable as exc:
                mx = get_metrics()
                if mx:
                    mx.counter("fabric.rpc_failures").inc()
                if attempt >= self.retry.max_attempts:
                    raise
                if mx:
                    mx.counter("fabric.rpc_retries").inc()
                # A shed/rate-limited reply advertises Retry-After; honour
                # it when it asks for more patience than our own backoff.
                advertised = getattr(exc, "retry_after", None) or 0.0
                time.sleep(
                    max(
                        self.retry.delay(f"{method}#{seq}", attempt),
                        min(float(advertised), _MAX_RETRY_AFTER),
                    )
                )
            except RpcError:
                raise

    # -- one attempt ---------------------------------------------------------

    def _attempt(
        self, method: str, params: Dict[str, Any], seq: int, deadline: float
    ) -> Dict[str, Any]:
        action = (
            self.chaos.rpc_action(self.node, seq)
            if self.chaos is not None else None
        )
        duplicate = False
        if action is not None:
            kind, arg = action
            get_metrics().counter(f"chaos.rpc_{kind}").inc()
            if kind == "partition":
                raise RpcUnavailable(
                    f"{method}: chaos: link partitioned (seq {seq})"
                )
            if kind == "drop":
                # The request vanishes on the wire: the caller observes
                # only its deadline expiring.
                raise RpcUnavailable(
                    f"{method}: chaos: request dropped (seq {seq})"
                )
            if kind == "delay":
                time.sleep(arg)
            elif kind == "dup":
                duplicate = True
        request_action = (
            self.chaos.request_action(self.node, seq)
            if self.chaos is not None else None
        )
        if request_action is not None:
            kind, arg = request_action
            get_metrics().counter(f"chaos.request_{kind}").inc()
            if kind == "slow":
                # A trickling client: the request still lands, late; the
                # server's socket timeout bounds how long it will wait.
                time.sleep(arg)
            else:
                # A buggy client ships garbage (oversized or non-JSON
                # bytes); the server must shed it with 413/400 and this
                # client recovers by retrying the *real* envelope.
                junk = (
                    _CHAOS_OVERSIZED_BODY if kind == "oversized"
                    else _CHAOS_MALFORMED_BODY
                )
                try:
                    self._post(junk, deadline)
                except (RpcError, RpcUnavailable):
                    pass
                raise RpcUnavailable(
                    f"{method}: chaos: {kind} request rejected (seq {seq})"
                )
        body = encode_request(
            method, params, node=self.node, seq=seq,
            deadline_ms=int(deadline * 1000),
        )
        if duplicate:
            # At-least-once delivery made visible: the same envelope hits
            # the server twice and the first response is discarded, so
            # only idempotent handlers survive chaos.
            try:
                self._post(body, deadline)
            except RpcUnavailable:
                pass
        result = self._post(body, deadline)
        get_metrics().counter("fabric.rpcs").inc()
        return result

    def _post(self, body: bytes, deadline: float) -> Dict[str, Any]:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=deadline
        )
        try:
            conn.request(
                "POST", "/rpc", body=body,
                headers={"Content-Type": "application/json"},
            )
            resp = conn.getresponse()
            raw = resp.read()
            status = resp.status
            retry_after = resp.getheader("Retry-After")
        except (ConnectionError, socket.timeout, OSError,
                http.client.HTTPException) as exc:
            raise RpcUnavailable(
                f"coordinator {self.host}:{self.port} unreachable: "
                f"{type(exc).__name__}: {exc}"
            ) from exc
        finally:
            conn.close()
        if status in _RETRYABLE_STATUSES:
            # Shed, rate-limited or deadline-expired: the coordinator is
            # alive but overloaded — transient by definition, so back
            # off and retry instead of failing the worker.
            mx = get_metrics()
            if mx:
                mx.counter("fabric.rpc_shed").inc()
            exc = RpcUnavailable(
                f"coordinator {self.host}:{self.port} shed the request "
                f"(HTTP {status})"
            )
            try:
                exc.retry_after = float(retry_after or 0.0)
            except ValueError:
                exc.retry_after = 0.0
            raise exc
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise RpcError(f"malformed RPC response: {exc}") from exc
        if not isinstance(payload, dict):
            raise RpcError("RPC response must be a JSON object")
        if not payload.get("ok"):
            raise RpcError(str(payload.get("error", "unknown RPC error")))
        result = payload.get("result")
        if not isinstance(result, dict):
            raise RpcError("RPC result must be a JSON object")
        return result
