"""Disabled-mode observability overhead guard.

The instrumentation added by :mod:`repro.obs` stays in the simulator, the
AVF engine and the campaign runtime permanently, so its *disabled* cost
must be negligible.  The contract is < 2% on the engine workload of
``test_perf_engine.py`` (minife L1 lifetimes through the 2x1 MB-AVF
engine).

Measuring a sub-2% delta by timing two runs directly is hopeless in a
noisy CI container, so the guard measures it analytically instead:

1. run the workload once with *counting* doubles installed, recording how
   many instrumentation call sites fire (``N``),
2. microbenchmark the disabled-mode cost of one such call — the real
   no-op idioms ``get_metrics().counter(name).inc()`` and
   ``with get_tracer().span(name): ...`` (``c``),
3. time the workload itself with observability disabled (``T``),

and assert ``2 * N * c < 2% * T`` (the factor of two covers untracked
trimmings such as ``span.set`` and ``if registry:`` truthiness checks).
"""

import time

import pytest

from repro import obs
from repro.core import AvfStudy, FaultMode, Interleaving, Parity, compute_mb_avf
from repro.core.layout import build_cache_array
from repro.experiments import scaled_apu_kwargs
from repro.obs import MetricsRegistry, Tracer
from repro.workloads import run


class CountingRegistry(MetricsRegistry):
    """Counts instrument fetches — one per disabled-mode no-op call site."""

    def __init__(self):
        super().__init__()
        self.ops = 0

    def counter(self, name):
        self.ops += 1
        return super().counter(name)

    def gauge(self, name):
        self.ops += 1
        return super().gauge(name)

    def histogram(self, name, bounds=None):
        self.ops += 1
        return super().histogram(name, bounds)


class CountingTracer(Tracer):
    """Counts span opens and external events."""

    def __init__(self):
        super().__init__()
        self.ops = 0

    def span(self, name, **args):
        self.ops += 1
        return super().span(name, **args)

    def add_event(self, name, duration, **args):
        self.ops += 1
        super().add_event(name, duration, **args)


@pytest.fixture(scope="module")
def prepared():
    """The engine workload of ``test_perf_engine.py``."""
    result = run("minife", apu_kwargs=scaled_apu_kwargs())
    study = AvfStudy(result.apu, result.output_ranges)
    lifetimes = study.l1_lifetimes()[0]
    cfg = result.apu.memsys.l1s[0].config
    layout = build_cache_array(
        cfg.n_sets, cfg.n_ways, cfg.line_bytes,
        style=Interleaving.WAY_PHYSICAL, factor=2,
    )
    return layout, lifetimes


def _null_op_costs():
    """Per-call cost of the two disabled-mode instrumentation idioms."""
    assert not obs.enabled()
    n = 200_000
    t0 = time.perf_counter()
    for _ in range(n):
        obs.get_metrics().counter("x").inc()
    c_metric = (time.perf_counter() - t0) / n
    t0 = time.perf_counter()
    for _ in range(n):
        with obs.get_tracer().span("x"):
            pass
    c_span = (time.perf_counter() - t0) / n
    return c_metric, c_span


@pytest.mark.benchmark(group="perf")
def test_disabled_obs_overhead_below_2pct(prepared, report):
    layout, lifetimes = prepared

    def workload():
        return compute_mb_avf(
            layout, lifetimes, FaultMode.linear(2), Parity()
        )

    # 1. How many instrumentation call sites does one run hit?
    creg, ctracer = CountingRegistry(), CountingTracer()
    obs.install(creg, ctracer)
    try:
        workload()
    finally:
        obs.disable()
    n_metric, n_span = creg.ops, ctracer.ops
    assert n_metric > 0 and n_span > 0, "engine path lost its instrumentation"

    # 2. What does one disabled-mode call cost?
    c_metric, c_span = _null_op_costs()

    # 3. What does the workload itself cost with observability off?
    t_work = min(
        (lambda t0: (workload(), time.perf_counter() - t0)[1])(
            time.perf_counter()
        )
        for _ in range(5)
    )

    budget = 2.0 * (n_metric * c_metric + n_span * c_span)
    ratio = budget / t_work
    report(
        "perf_obs_overhead",
        [
            f"metric call sites/run:  {n_metric}  @ {c_metric * 1e9:.0f}ns",
            f"span call sites/run:    {n_span}  @ {c_span * 1e9:.0f}ns",
            f"workload time:          {t_work * 1e3:.1f}ms",
            f"disabled overhead:      {ratio:.4%} (budget, 2x safety margin)",
        ],
    )
    assert ratio < 0.02, (
        f"disabled-mode observability overhead {ratio:.2%} breaks the "
        f"< 2% contract ({n_metric} metric + {n_span} span ops)"
    )
