"""Hierarchical wall-clock span tracing with Chrome trace-event export.

A :class:`Tracer` records *spans* — named, nested, timed sections of the
pipeline (``simulate``, ``lifetime``, ``enumerate``, ``integrate``,
``inject``, ...) — and exports them either as JSONL (one event per line,
grep-friendly) or as Chrome trace-event JSON, which loads directly in
Perfetto (https://ui.perfetto.dev) or ``chrome://tracing`` and renders
the campaign as a flame chart.

Disabled mode is a :class:`NullTracer` whose :meth:`~NullTracer.span`
returns one shared no-op context manager, so spans left in hot code cost
a method call and nothing else.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, List, Union

from ..ioutil import atomic_write

__all__ = ["SpanEvent", "Tracer", "NullTracer", "NULL_TRACER"]

PathLike = Union[str, "os.PathLike[str]"]


class SpanEvent:
    """One finished span: relative start/duration (seconds) plus nesting."""

    __slots__ = ("name", "start", "duration", "depth", "args")

    def __init__(
        self, name: str, start: float, duration: float, depth: int, args: Dict
    ) -> None:
        self.name = name
        self.start = start
        self.duration = duration
        self.depth = depth
        self.args = args

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "start": round(self.start, 9),
            "duration": round(self.duration, 9),
            "depth": self.depth,
            "args": self.args,
        }


class _ActiveSpan:
    """Context manager recording one span into its tracer on exit."""

    __slots__ = ("_tracer", "name", "args", "_start", "_depth")

    def __init__(self, tracer: "Tracer", name: str, args: Dict) -> None:
        self._tracer = tracer
        self.name = name
        self.args = args
        self._start = 0.0
        self._depth = 0

    def set(self, **args) -> None:
        """Attach (or update) attributes after the span has been entered."""
        self.args.update(args)

    def __enter__(self) -> "_ActiveSpan":
        self._depth = self._tracer._depth
        self._tracer._depth += 1
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        end = time.perf_counter()
        tr = self._tracer
        tr._depth -= 1
        tr.events.append(
            SpanEvent(
                self.name,
                self._start - tr.t0,
                end - self._start,
                self._depth,
                self.args,
            )
        )


class _NullSpan:
    """Shared, stateless no-op span for the disabled tracer."""

    __slots__ = ()

    def set(self, **args) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects spans on one timeline (origin = tracer construction).

    Spans nest lexically: :meth:`span` is a context manager, and the
    current nesting depth is recorded so exporters can rebuild the
    hierarchy.  Events are appended on span *exit*, hence ordered by end
    time; exporters sort as needed.
    """

    def __init__(self) -> None:
        self.t0 = time.perf_counter()
        self.events: List[SpanEvent] = []
        self._depth = 0

    def __bool__(self) -> bool:
        return True

    def span(self, name: str, **args) -> _ActiveSpan:
        """Open a nested span; use as ``with tracer.span("stage"): ...``."""
        return _ActiveSpan(self, name, args)

    def add_event(self, name: str, duration: float, **args) -> None:
        """Record an externally timed event ending now (e.g. a task that
        ran in a worker process, whose duration the parent measured)."""
        end = time.perf_counter()
        self.events.append(
            SpanEvent(name, end - self.t0 - duration, duration, self._depth, args)
        )

    def merge_foreign(
        self,
        events: List[Dict],
        *,
        offset: float,
        depth: int = 0,
        **extra,
    ) -> None:
        """Fold spans recorded on another timeline into this one.

        ``events`` are span dicts (:meth:`SpanEvent.to_dict` shape) whose
        ``start`` is relative to the *foreign* origin; ``offset`` places
        that origin on this tracer's timeline.  Used by the fabric
        coordinator to merge per-task span shards shipped by worker
        nodes, stamping each with provenance (e.g. ``node=...``) via
        ``extra``.  Malformed entries are skipped, never raised: trace
        merging must not fail a campaign.
        """
        base_depth = self._depth + depth
        for e in events:
            if not isinstance(e, dict):
                continue
            try:
                name = str(e["name"])
                start = offset + float(e["start"])
                duration = float(e["duration"])
                nest = base_depth + int(e.get("depth", 0))
            except (KeyError, TypeError, ValueError):
                continue
            args = dict(e.get("args") or {})
            args.update(extra)
            self.events.append(SpanEvent(name, start, duration, nest, args))

    # -- exporters ----------------------------------------------------------

    def export_jsonl(self, path: PathLike) -> None:
        """One JSON object per line, sorted by start time."""
        lines = [
            json.dumps(e.to_dict(), sort_keys=True)
            for e in sorted(self.events, key=lambda e: e.start)
        ]
        atomic_write(Path(path), "\n".join(lines) + ("\n" if lines else ""))

    def export_chrome(self, path: PathLike) -> None:
        """Chrome trace-event JSON (open in Perfetto / chrome://tracing).

        Spans become complete (``"ph": "X"``) events with microsecond
        timestamps; nesting depth is encoded implicitly by containment on
        one track per process.
        """
        pid = os.getpid()
        trace_events = [
            {
                "name": e.name,
                "ph": "X",
                "ts": round(e.start * 1e6, 3),
                "dur": round(e.duration * 1e6, 3),
                "pid": pid,
                "tid": 0,
                "args": e.args,
            }
            for e in sorted(self.events, key=lambda e: e.start)
        ]
        doc = {
            "traceEvents": trace_events,
            "displayTimeUnit": "ms",
            "otherData": {"tool": "repro.obs"},
        }
        atomic_write(Path(path), json.dumps(doc, sort_keys=True))

    def export(self, path: PathLike) -> None:
        """Export by extension: ``.jsonl`` -> JSONL, anything else Chrome."""
        if str(path).endswith(".jsonl"):
            self.export_jsonl(path)
        else:
            self.export_chrome(path)

    # -- summaries ----------------------------------------------------------

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Aggregate timings per span name: count, total, mean, max."""
        agg: Dict[str, Dict[str, float]] = {}
        for e in self.events:
            s = agg.get(e.name)
            if s is None:
                s = agg[e.name] = {"count": 0, "total": 0.0, "max": 0.0}
            s["count"] += 1
            s["total"] += e.duration
            s["max"] = max(s["max"], e.duration)
        for s in agg.values():
            s["mean"] = s["total"] / s["count"]
        return agg


class NullTracer(Tracer):
    """Disabled-mode tracer: falsy, records nothing, exports nothing."""

    def __bool__(self) -> bool:
        return False

    def span(self, name: str, **args) -> _NullSpan:  # type: ignore[override]
        return _NULL_SPAN

    def add_event(self, name: str, duration: float, **args) -> None:
        pass

    def merge_foreign(
        self, events: List[Dict], *, offset: float, depth: int = 0, **extra
    ) -> None:
        pass

    def export_jsonl(self, path: PathLike) -> None:
        pass

    def export_chrome(self, path: PathLike) -> None:
        pass


#: the process-wide disabled tracer (see :func:`repro.obs.get_tracer`)
NULL_TRACER = NullTracer()
