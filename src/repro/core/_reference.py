"""Pure-Python reference implementations of the engine's hot paths.

The production kernels in :mod:`repro.core.intervals` and
:mod:`repro.core.avf` are numpy-vectorized; this module preserves the
original (pre-vectorization) per-event / per-placement implementations as
an executable specification.  The equivalence suite
(``tests/core/test_vectorized_equivalence.py``) property-tests that the
vectorized kernels, the windowed 2-D enumerator and the batch API produce
byte-identical intervals, signatures, outcome cycles and series.

Nothing here is used on the production path — do not optimise it.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from .intervals import AceClass, Interval, IntervalSet, Outcome
from .layout import SramArray
from .protection import ProtectionScheme, classify_region

__all__ = [
    "sweep_max_ref",
    "combine_outcomes_ref",
    "map_class_ref",
    "clip_ref",
    "bucket_accumulate_ref",
    "total_ref",
    "total_at_least_ref",
    "intersection_duration_ref",
    "enumerate_signatures_ref",
    "ace_locality_ref",
    "compute_outcome_cycles_ref",
]


def sweep_max_ref(sets: Sequence[IntervalSet]) -> IntervalSet:
    """Event-at-a-time pointwise maximum-class union (eq. 5)."""
    live = [s for s in sets if s]
    if not live:
        return IntervalSet()
    if len(live) == 1:
        return IntervalSet._from_sorted(live[0].intervals())
    events: List[Tuple[int, int, int]] = []  # (cycle, delta, cls)
    maxcls = 0
    for iset in live:
        for s, e, c in iset:
            events.append((s, +1, c))
            events.append((e, -1, c))
            if c > maxcls:
                maxcls = c
    events.sort()
    counts = [0] * (maxcls + 1)
    out: List[Interval] = []
    cur_cls = 0
    cur_start = 0
    i, n = 0, len(events)
    while i < n:
        cyc = events[i][0]
        while i < n and events[i][0] == cyc:
            _, d, c = events[i]
            counts[c] += d
            i += 1
        new_cls = 0
        for c in range(maxcls, 0, -1):
            if counts[c] > 0:
                new_cls = c
                break
        if new_cls != cur_cls:
            if cur_cls != 0 and cyc > cur_start:
                if out and out[-1][1] == cur_start and out[-1][2] == cur_cls:
                    ps, _, pc = out[-1]
                    out[-1] = (ps, cyc, pc)
                else:
                    out.append((cur_start, cyc, cur_cls))
            cur_start = cyc
            cur_cls = new_cls
    return IntervalSet._from_sorted(out)


def combine_outcomes_ref(
    sets: Sequence[IntervalSet], *, due_preempts_sdc: bool = False
) -> IntervalSet:
    """Reference group-outcome combination (Sec. VII-B / Sec. VIII rules)."""
    if not due_preempts_sdc:
        return sweep_max_ref(sets)
    merged = sweep_max_ref(sets)
    if not merged:
        return merged
    due_times = sweep_max_ref(
        [
            map_class_ref(
                s, lambda c: 1 if c in (Outcome.TRUE_DUE, Outcome.FALSE_DUE) else 0
            )
            for s in sets
        ]
    )
    if not due_times:
        return merged
    out: List[Interval] = []

    def emit(s: int, e: int, c: int) -> None:
        if out and out[-1][1] == s and out[-1][2] == c:
            ps, _, pc = out[-1]
            out[-1] = (ps, e, pc)
        else:
            out.append((s, e, c))

    due_ivals = due_times.intervals()
    for s, e, c in merged:
        if c != Outcome.SDC:
            emit(s, e, c)
            continue
        cur = s
        for ds, de, _ in due_ivals:
            if de <= cur or ds >= e:
                continue
            if ds > cur:
                emit(cur, ds, int(Outcome.SDC))
            ov_end = min(de, e)
            emit(max(ds, cur), ov_end, int(Outcome.TRUE_DUE))
            cur = ov_end
            if cur >= e:
                break
        if cur < e:
            emit(cur, e, int(Outcome.SDC))
    return IntervalSet._from_sorted(out)


def map_class_ref(iset: IntervalSet, fn: Callable[[int], int]) -> IntervalSet:
    """Per-interval class remap with adjacent same-class coalescing."""
    out: List[Interval] = []
    for s, e, c in iset:
        c2 = fn(c)
        if c2 == 0:
            continue
        if out and out[-1][1] == s and out[-1][2] == c2:
            ps, _, pc = out[-1]
            out[-1] = (ps, e, pc)
        else:
            out.append((s, e, c2))
    return IntervalSet._from_sorted(out)


def clip_ref(iset: IntervalSet, start: int, end: int) -> IntervalSet:
    """Per-interval window restriction."""
    out: List[Interval] = []
    for s, e, c in iset:
        s2, e2 = max(s, start), min(e, end)
        if s2 < e2:
            out.append((s2, e2, c))
    return IntervalSet._from_sorted(out)


def bucket_accumulate_ref(iset: IntervalSet, edges: Sequence[int], out) -> None:
    """Per-interval, per-bucket overlap accumulation."""
    import bisect

    nb = len(edges) - 1
    for s, e, c in iset:
        lo = bisect.bisect_right(edges, s) - 1
        lo = max(lo, 0)
        for b in range(lo, nb):
            bs, be = edges[b], edges[b + 1]
            if bs >= e:
                break
            ov = min(e, be) - max(s, bs)
            if ov > 0:
                out[b][c] += ov


def total_ref(iset: IntervalSet, klass: int) -> int:
    return sum(e - s for s, e, c in iset if c == klass)


def total_at_least_ref(iset: IntervalSet, klass: int) -> int:
    return sum(e - s for s, e, c in iset if c >= klass)


def intersection_duration_ref(a: IntervalSet, b: IntervalSet, klass: int) -> int:
    """Two-pointer merge of cycles with both sets at class >= ``klass``."""
    ivals_a = [(s, e) for s, e, c in a if c >= klass]
    ivals_b = [(s, e) for s, e, c in b if c >= klass]
    total = 0
    i = j = 0
    while i < len(ivals_a) and j < len(ivals_b):
        s = max(ivals_a[i][0], ivals_b[j][0])
        e = min(ivals_a[i][1], ivals_b[j][1])
        if s < e:
            total += e - s
        if ivals_a[i][1] < ivals_b[j][1]:
            i += 1
        else:
            j += 1
    return total


GroupSignature = Tuple[Tuple[int, FrozenSet[int]], ...]


def enumerate_signatures_ref(
    array: SramArray, byte2iid: np.ndarray, mode
) -> Dict[GroupSignature, int]:
    """Per-placement fault-group signature counting (any mode geometry).

    This is the generic nested-loop enumerator the vectorized 2-D windowed
    path replaced.  Unlike the production enumerator it also emits the
    signature of all-lifetime-empty placements (whose regions classify to
    nothing either way); equivalence tests compare after dropping it.
    """
    h, w = mode.height, mode.width
    rows, cols = array.rows, array.cols
    if h > rows or w > cols:
        return {}
    iid_of = byte2iid[array.byte_of]
    dom_of = array.domain_of
    sigs: Dict[GroupSignature, int] = {}
    offsets = mode.offsets
    for r0 in range(rows - h + 1):
        dom_rows = [list(map(int, dom_of[r0 + dr])) for dr in range(h)]
        iid_rows = [list(map(int, iid_of[r0 + dr])) for dr in range(h)]
        for c0 in range(cols - w + 1):
            regions: Dict[int, Tuple[int, set]] = {}
            for dr, dc in offsets:
                d = dom_rows[dr][c0 + dc]
                iid = iid_rows[dr][c0 + dc]
                if d in regions:
                    n, ids = regions[d]
                    if iid:
                        ids.add(iid)
                    regions[d] = (n + 1, ids)
                else:
                    regions[d] = (1, {iid} if iid else set())
            sig = tuple(
                sorted((n, frozenset(ids)) for n, ids in regions.values())
            )
            sigs[sig] = sigs.get(sig, 0) + 1
    return sigs


def ace_locality_ref(array: SramArray, lifetimes) -> float:
    """Row-at-a-time adjacent-pair ACE locality (Sec. VI-B)."""
    from .avf import _canonical_iset_ids

    canon = _canonical_iset_ids(lifetimes)
    byte2iid, isets = canon.byte2iid, canon.isets
    iid_of = byte2iid[array.byte_of]
    pair_counts: Dict[Tuple[int, int], int] = {}
    for r in range(array.rows):
        row = iid_of[r]
        left, right = row[:-1], row[1:]
        keys = np.stack([left, right], axis=1)
        uniq, counts = np.unique(keys, axis=0, return_counts=True)
        for (a, b), n in zip(uniq, counts):
            pair_counts[(int(a), int(b))] = pair_counts.get((int(a), int(b)), 0) + int(n)
    inter = 0.0
    union = 0.0
    ace = int(AceClass.ACE)
    for (ia, ib), n in pair_counts.items():
        da = total_at_least_ref(isets[ia], ace) if ia else 0
        db = total_at_least_ref(isets[ib], ace) if ib else 0
        if da == 0 and db == 0:
            continue
        ov = (
            intersection_duration_ref(isets[ia], isets[ib], ace)
            if ia and ib
            else 0
        )
        inter += n * ov
        union += n * (da + db - ov)
    return inter / union if union else 1.0


def compute_outcome_cycles_ref(
    array: SramArray,
    lifetimes,
    mode,
    scheme: ProtectionScheme,
    *,
    due_preempts_sdc: bool = False,
    miscorrect_corrupts: bool = False,
    series_edges: Optional[Sequence[int]] = None,
):
    """Reference MB-AVF core: per-placement enumeration + reference kernels.

    Returns ``(outcome_cycles, series)`` computed exactly as the
    pre-vectorization engine did; the production
    :func:`repro.core.avf.compute_mb_avf` must reproduce both bit-for-bit.
    """
    from .avf import _canonical_iset_ids

    canon = _canonical_iset_ids(lifetimes)
    isets = canon.isets
    sigs = enumerate_signatures_ref(array, canon.byte2iid, mode)

    region_ace_cache: Dict[FrozenSet[int], IntervalSet] = {}

    def region_outcome(n_bits: int, ids: FrozenSet[int]) -> IntervalSet:
        ace = region_ace_cache.get(ids)
        if ace is None:
            ace = sweep_max_ref([isets[i] for i in ids]) if ids else IntervalSet()
            region_ace_cache[ids] = ace
        return classify_region(
            scheme.react(n_bits), ace, miscorrect_corrupts=miscorrect_corrupts
        )

    outcome_cycles: Dict[Outcome, float] = {
        Outcome.FALSE_DUE: 0.0,
        Outcome.TRUE_DUE: 0.0,
        Outcome.SDC: 0.0,
    }
    edges = series = None
    if series_edges is not None:
        edges = np.asarray(series_edges, dtype=np.int64)
        series = np.zeros((len(edges) - 1, 4), dtype=np.float64)
    for sig, weight in sigs.items():
        combined = combine_outcomes_ref(
            [region_outcome(n, ids) for n, ids in sig],
            due_preempts_sdc=due_preempts_sdc,
        )
        if not combined:
            continue
        for s, e, c in combined:
            outcome_cycles[Outcome(c)] += weight * (e - s)
        if series is not None:
            tmp = np.zeros_like(series)
            bucket_accumulate_ref(combined, edges, tmp)
            series += weight * tmp
    return outcome_cycles, series
