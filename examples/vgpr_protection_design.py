"""VGPR protection design study (paper Sec. VIII / Figure 11, miniature).

Chooses a protection scheme for the GPU vector register file by combining
per-fault-mode MB-AVFs with the raw fault rates of Table III into SDC and
DUE soft error rates, for parity vs SEC-DED ECC and intra- vs inter-thread
interleaving.  The paper's conclusion — parity with x4 inter-thread
interleaving beats SEC-DED at a fraction of the area — emerges from the
same computation here.

Run with:  python examples/vgpr_protection_design.py
"""

from repro.core import (
    AvfStudy,
    FaultMode,
    Interleaving,
    Parity,
    SecDed,
    TABLE_III,
    soft_error_rate,
)
from repro.workloads import run

WORKLOADS = ("matmul", "transpose", "histogram")
DESIGNS = [
    ("parity rx2", Parity(), Interleaving.INTRA_THREAD, 2),
    ("parity rx4", Parity(), Interleaving.INTRA_THREAD, 4),
    ("parity tx2", Parity(), Interleaving.INTER_THREAD, 2),
    ("parity tx4", Parity(), Interleaving.INTER_THREAD, 4),
    ("secded rx2", SecDed(), Interleaving.INTRA_THREAD, 2),
    ("secded tx2", SecDed(), Interleaving.INTER_THREAD, 2),
]


def main() -> None:
    studies = []
    for wl in WORKLOADS:
        result = run(wl)
        studies.append(AvfStudy(result.apu, result.output_ranges))

    print(f"{'design':<12} {'area ovh':>9} {'SDC rate':>9} {'DUE rate':>9}")
    print("-" * 42)
    for label, scheme, style, factor in DESIGNS:
        sdc = due = 0.0
        for study in studies:
            avf_by_mode = {}
            for mode_name, _fit in TABLE_III.items():
                m = int(mode_name.split("x")[0])
                res = study.vgpr_avf(
                    FaultMode.linear(m), scheme, style=style, factor=factor
                )
                avf_by_mode[mode_name] = (res.due_avf, res.sdc_avf)
            ser = soft_error_rate(TABLE_III, avf_by_mode, "vgpr")
            sdc += ser.sdc_fit / len(studies)
            due += ser.due_fit / len(studies)
        ovh = scheme.area_overhead(32)
        print(f"{label:<12} {ovh:8.1%} {sdc:9.4f} {due:9.4f}")
    print("\n(rates in the Table III unit where the total raw fault rate is")
    print(" 100; the paper finds parity tx4 yields the lowest SDC rate)")


if __name__ == "__main__":
    main()
