"""Unit tests for the ISA definitions and the program builder."""

import struct

import pytest

from repro.arch.isa import (
    CMP_CONDS,
    MEM_OPS,
    SCALAR_OPS,
    VECTOR_OPS,
    Instr,
    ProgramBuilder,
    fimm,
    imm,
    s,
    v,
)


class TestOperands:
    def test_constructors(self):
        assert v(3) == ("v", 3)
        assert s(2) == ("s", 2)
        assert imm(7) == ("imm", 7)

    def test_negative_register_rejected(self):
        with pytest.raises(ValueError):
            v(-1)
        with pytest.raises(ValueError):
            s(-2)

    def test_fimm_is_float32_bits(self):
        bits = fimm(1.5)[1]
        assert struct.unpack("<f", struct.pack("<I", bits))[0] == 1.5

    def test_imm_truncates_to_int(self):
        assert imm(3.9) == ("imm", 3)


class TestInstr:
    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            Instr("v_frobnicate")

    def test_unknown_condition_rejected(self):
        with pytest.raises(ValueError):
            Instr("v_cmp", srcs=(v(0), v(1)), cond="spaceship")

    def test_conditions(self):
        assert set(CMP_CONDS) == {"lt", "le", "eq", "ne", "gt", "ge"}

    def test_op_classes_disjoint(self):
        assert not (VECTOR_OPS & MEM_OPS)
        assert not (VECTOR_OPS & SCALAR_OPS)
        assert not (SCALAR_OPS & MEM_OPS)


class TestProgramBuilder:
    def test_implicit_endpgm(self):
        p = ProgramBuilder()
        p.mov(v(2), imm(1))
        prog = p.build()
        assert prog.instrs[-1].op == "s_endpgm"
        assert len(prog) == 2

    def test_explicit_endpgm_not_duplicated(self):
        p = ProgramBuilder()
        p.endpgm()
        assert len(p.build()) == 1

    def test_register_counts_track_usage(self):
        p = ProgramBuilder()
        p.mov(v(9), imm(1))
        p.s_mov(s(5), imm(2))
        prog = p.build()
        assert prog.n_vregs == 10
        assert prog.n_sregs == 6

    def test_minimum_registers_for_presets(self):
        prog = ProgramBuilder().build()
        assert prog.n_vregs >= 2  # v0 (tid) and v1 (lane) are preset
        assert prog.n_sregs >= 2  # s0 (group) and s1 (wavefront)

    def test_labels_resolve(self):
        p = ProgramBuilder()
        p.label("top")
        p.mov(v(2), imm(0))
        p.branch("top")
        prog = p.build()
        assert prog.target_pc("top") == 0

    def test_undefined_label_rejected(self):
        p = ProgramBuilder()
        p.branch("nowhere")
        with pytest.raises(ValueError):
            p.build()

    def test_duplicate_label_rejected(self):
        p = ProgramBuilder()
        p.label("x")
        with pytest.raises(ValueError):
            p.label("x")

    def test_fmac_reads_destination(self):
        p = ProgramBuilder()
        p.fmac(v(5), v(2), v(3))
        ins = p.build().instrs[0]
        assert ins.srcs == (v(2), v(3), v(5))

    def test_store_sources(self):
        p = ProgramBuilder()
        p.store(v(7), v(8), offset=12, pred=True)
        ins = p.build().instrs[0]
        assert ins.srcs == (v(7), v(8))
        assert ins.offset == 12
        assert ins.predicated
        assert ins.dst is None

    def test_chaining(self):
        p = ProgramBuilder()
        assert p.mov(v(2), imm(0)).iadd(v(2), v(2), imm(1)) is p
