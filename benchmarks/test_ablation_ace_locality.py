"""Ablation: ACE locality predicts MB-AVF (the paper's Sec. VI-B insight).

The paper introduces *ACE locality* — the tendency of physically adjacent
bits to be ACE at the same cycles — and claims it is the design lever:
"increasing the ACE locality in a structure will reduce its MB-AVF".

This ablation measures both quantities over every (workload, interleaving
style) pair and checks the relationship holds: within a workload, the
layout with higher ACE locality never has a (meaningfully) higher 2x1
MB-AVF, and across the population the correlation is negative.
"""

import numpy as np
import pytest

from repro.core import FaultMode, Interleaving, Parity

WORKLOADS = ("matmul", "dct", "srad", "hotspot", "minife", "comd", "fastwalsh")
STYLES = (
    Interleaving.LOGICAL,
    Interleaving.WAY_PHYSICAL,
    Interleaving.INDEX_PHYSICAL,
)


def _measure(study_of):
    points = []
    for wl in WORKLOADS:
        study = study_of(wl)
        sb = study.cache_avf("l1", FaultMode.linear(1), Parity()).due_avf
        if sb < 1e-4:
            continue
        for style in STYLES:
            loc = study.cache_ace_locality("l1", style=style, factor=2)
            mb = study.cache_avf(
                "l1", FaultMode.linear(2), Parity(), style=style, factor=2
            ).due_avf
            points.append((wl, style.value, loc, mb / sb))
    return points


@pytest.mark.benchmark(group="ablation")
def test_ablation_ace_locality(benchmark, study_of, report):
    points = benchmark.pedantic(_measure, args=(study_of,), rounds=1, iterations=1)
    lines = [f"{'workload':<12} {'style':<10} {'ACE locality':>13} {'MB/SB':>7}"]
    for wl, style, loc, ratio in points:
        lines.append(f"{wl:<12} {style:<10} {loc:13.3f} {ratio:6.2f}x")
    locs = np.array([p[2] for p in points])
    ratios = np.array([p[3] for p in points])
    corr = float(np.corrcoef(locs, ratios)[0, 1])
    lines.append(f"correlation(ACE locality, MB/SB ratio) = {corr:.3f}")
    report("ablation_ace_locality", lines)

    # Higher locality -> lower MB-AVF, across the whole population.
    assert corr < -0.5
    # And within each workload: the highest-locality layout never has a
    # meaningfully higher MB/SB ratio than the lowest-locality layout.
    by_wl = {}
    for wl, _, loc, ratio in points:
        by_wl.setdefault(wl, []).append((loc, ratio))
    for wl, pts in by_wl.items():
        pts.sort()
        lowest_loc_ratio = pts[0][1]
        highest_loc_ratio = pts[-1][1]
        assert highest_loc_ratio <= lowest_loc_ratio + 0.05, wl
