"""MB-AVF computation engine (Sec. IV, V and VII of the paper).

Given

* a physical layout (:class:`~repro.core.layout.SramArray`),
* per-byte classed ACE lifetimes (:class:`StructureLifetimes`),
* a fault mode (:class:`~repro.core.faultmodes.FaultMode`) and
* a protection scheme (:class:`~repro.core.protection.ProtectionScheme`),

the engine enumerates every fault group of the mode in the structure,
splits each group into overlapped regions (one per protection domain it
touches), classifies each region through the scheme's reaction, combines the
regions with the SDC/DUE precedence rules, and integrates the resulting
outcome intervals into DUE and SDC MB-AVF values (eq. 2, 4-7).

Groups whose classification is identical — same per-region faulty-bit counts
and same member lifetime content — are deduplicated, which makes the
enumeration of the ~1e5 groups of a real cache array cheap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from ..obs import get_metrics, get_tracer
from .faultmodes import FaultMode
from .intervals import AceClass, IntervalSet, Outcome, combine_outcomes, sweep_max
from .layout import SramArray
from .protection import ProtectionScheme, classify_region

__all__ = [
    "StructureLifetimes",
    "MbAvfResult",
    "compute_mb_avf",
    "compute_sb_avf",
    "merge_results",
    "ace_locality",
    "intersection_duration",
]


@dataclass
class StructureLifetimes:
    """Per-byte classed ACE intervals for one hardware structure.

    ``byte_isets[i]`` holds the :class:`AceClass` intervals of tracked byte
    ``i`` (all 8 bits of a byte share one classification; bit-level liveness
    refinements are already folded in by the lifetime builder).  The analysis
    window is ``[start_cycle, end_cycle)``; intervals must lie inside it.
    """

    name: str
    byte_isets: Sequence[IntervalSet]
    start_cycle: int
    end_cycle: int

    @property
    def window_cycles(self) -> int:
        return self.end_cycle - self.start_cycle

    def sb_ace_fraction(self) -> float:
        """Plain single-bit AVF with no protection (fraction of ACE bit-cycles)."""
        total = sum(s.total(int(AceClass.ACE)) for s in self.byte_isets)
        return total / (len(self.byte_isets) * self.window_cycles)


@dataclass
class MbAvfResult:
    """Result of one MB-AVF computation for a (structure, mode, scheme)."""

    structure: str
    mode: FaultMode
    scheme: str
    n_groups: int
    window_cycles: int
    #: summed group-cycles per outcome class (indexed by ``Outcome``)
    outcome_cycles: Dict[Outcome, float] = field(default_factory=dict)
    #: optional time series: bucket edges and per-bucket outcome group-cycles
    series_edges: Optional[np.ndarray] = None
    series: Optional[np.ndarray] = None  # (buckets, 4)

    def _avf(self, *outcomes: Outcome) -> float:
        denom = self.n_groups * self.window_cycles
        if denom == 0:
            return 0.0
        return sum(self.outcome_cycles.get(o, 0.0) for o in outcomes) / denom

    @property
    def due_avf(self) -> float:
        """DUE MB-AVF: true + false detected-uncorrected error AVF."""
        return self._avf(Outcome.TRUE_DUE, Outcome.FALSE_DUE)

    @property
    def true_due_avf(self) -> float:
        return self._avf(Outcome.TRUE_DUE)

    @property
    def false_due_avf(self) -> float:
        return self._avf(Outcome.FALSE_DUE)

    @property
    def sdc_avf(self) -> float:
        """SDC MB-AVF: silent-data-corruption AVF."""
        return self._avf(Outcome.SDC)

    @property
    def total_avf(self) -> float:
        """Any-error AVF (SDC + DUE)."""
        return self._avf(Outcome.SDC, Outcome.TRUE_DUE, Outcome.FALSE_DUE)

    def series_avf(self, outcome: Outcome) -> np.ndarray:
        """Per-bucket AVF time series for one outcome class."""
        if self.series is None or self.series_edges is None:
            raise ValueError("result was computed without a time series")
        widths = np.diff(self.series_edges).astype(float)
        denom = widths * self.n_groups
        with np.errstate(divide="ignore", invalid="ignore"):
            out = np.where(denom > 0, self.series[:, int(outcome)] / denom, 0.0)
        return out

    def quantized_avf(
        self, *outcomes: Outcome, reduce: str = "max"
    ) -> float:
        """Quantized AVF: worst (or percentile) windowed AVF over the run.

        Whole-run AVFs average away vulnerability spikes; quantized AVF
        (Biswas et al., the paper's ref [9]) reports the AVF of the worst
        small window instead, which is what burst-error budgeting needs.
        Requires the result to have been computed with ``series_edges``.
        ``reduce`` is ``'max'`` or ``'p<NN>'`` (e.g. ``'p95'``).
        """
        if not outcomes:
            outcomes = (Outcome.TRUE_DUE, Outcome.FALSE_DUE, Outcome.SDC)
        total = sum(self.series_avf(o) for o in outcomes)
        if reduce == "max":
            return float(total.max())
        if reduce.startswith("p"):
            return float(np.percentile(total, float(reduce[1:])))
        raise ValueError(f"unknown reduction {reduce!r}")


def _canonical_iset_ids(
    lifetimes: StructureLifetimes,
) -> Tuple[np.ndarray, List[IntervalSet]]:
    """Map byte ids to canonical interval-set ids (0 = empty set)."""
    table: Dict[Tuple, int] = {(): 0}
    unique: List[IntervalSet] = [IntervalSet()]
    byte2iid = np.zeros(len(lifetimes.byte_isets), dtype=np.int32)
    for b, iset in enumerate(lifetimes.byte_isets):
        key = tuple(iset)
        iid = table.get(key)
        if iid is None:
            iid = len(unique)
            table[key] = iid
            unique.append(iset)
        byte2iid[b] = iid
    return byte2iid, unique


GroupSignature = Tuple[Tuple[int, FrozenSet[int]], ...]


def _unique_rows(a: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """(unique rows, counts) via lexsort — much faster than unique(axis=0)."""
    order = np.lexsort(a.T[::-1])
    b = a[order]
    change = np.empty(len(b), dtype=bool)
    change[0] = True
    np.any(b[1:] != b[:-1], axis=1, out=change[1:])
    starts = np.where(change)[0]
    counts = np.diff(np.append(starts, len(b)))
    return b[starts], counts


def _enumerate_linear_signatures(
    array: SramArray, byte2iid: np.ndarray, m: int
) -> Dict[GroupSignature, int]:
    """Vectorized fault-group signature counting for contiguous Mx1 modes.

    Every window of ``m`` adjacent bits in a row is keyed by the vector of
    (domain id relative to the window's first bit's domain, lifetime id) per
    position.  Equal keys imply an identical domain-equality pattern and
    identical member lifetimes, hence an identical classification; windows
    are bucketed with one ``np.unique`` over all rows at once.
    """
    from numpy.lib.stride_tricks import sliding_window_view

    iid_of = byte2iid[array.byte_of]
    dom_win = sliding_window_view(array.domain_of, m, axis=1)
    iid_win = sliding_window_view(iid_of, m, axis=1)
    n_win = dom_win.shape[0] * dom_win.shape[1]
    iid_flat = iid_win.reshape(n_win, m)
    # Windows whose members are all lifetime-empty classify to nothing; drop
    # them up front (they still count in the denominator via n_groups).
    active = iid_flat.any(axis=1)
    if not active.any():
        return {}
    dom_flat = dom_win.reshape(n_win, m)[active]
    keys = np.empty((len(dom_flat), 2 * m), dtype=np.int32)
    keys[:, :m] = dom_flat - dom_flat[:, :1]
    keys[:, m:] = iid_flat[active]
    uniq, counts = _unique_rows(keys)
    sigs: Dict[GroupSignature, int] = {}
    for key, cnt in zip(uniq, counts):
        regions: Dict[int, Tuple[int, set]] = {}
        for pos in range(m):
            d = int(key[pos])
            iid = int(key[m + pos])
            if d in regions:
                n, ids = regions[d]
                if iid:
                    ids.add(iid)
                regions[d] = (n + 1, ids)
            else:
                regions[d] = (1, {iid} if iid else set())
        sig = tuple(sorted((n, frozenset(ids)) for n, ids in regions.values()))
        sigs[sig] = sigs.get(sig, 0) + int(cnt)
    return sigs


def _enumerate_signatures(
    array: SramArray, byte2iid: np.ndarray, mode: FaultMode
) -> Dict[GroupSignature, int]:
    """Count fault groups per canonical (regions) signature.

    A signature is the multiset of the group's overlapped regions, each
    region being ``(n_faulty_bits, frozenset of member lifetime ids)``.  Two
    groups with equal signatures have identical AVF classification.
    """
    h, w = mode.height, mode.width
    rows, cols = array.rows, array.cols
    if h > rows or w > cols:
        return {}
    if mode.is_linear():
        return _enumerate_linear_signatures(array, byte2iid, mode.n_bits)
    iid_of = byte2iid[array.byte_of]  # (rows, cols) canonical lifetime ids
    dom_of = array.domain_of
    sigs: Dict[GroupSignature, int] = {}
    offsets = mode.offsets
    empty_sig: Optional[GroupSignature] = None
    for r0 in range(rows - h + 1):
        # Fast path: a window of rows with no non-empty lifetimes yields the
        # all-unACE signature for every column placement.
        window_iids = iid_of[r0 : r0 + h]
        if not window_iids.any():
            if empty_sig is None:
                dom_row = dom_of[r0 : r0 + h]
                counts: Dict[int, int] = {}
                for dr, dc in offsets:
                    d = int(dom_row[dr, dc])
                    counts[d] = counts.get(d, 0) + 1
                empty_sig = tuple(sorted((n, frozenset()) for n in counts.values()))
            # Column placements can differ in how many domains they straddle,
            # but with empty lifetimes every region is unACE regardless, so
            # only the region *count* pattern could matter — and it cannot
            # change the (empty) outcome.  Lump them together.
            sigs[empty_sig] = sigs.get(empty_sig, 0) + (cols - w + 1)
            continue
        dom_rows = [list(map(int, dom_of[r0 + dr])) for dr in range(h)]
        iid_rows = [list(map(int, window_iids[dr])) for dr in range(h)]
        for c0 in range(cols - w + 1):
            regions: Dict[int, Tuple[int, set]] = {}
            for dr, dc in offsets:
                d = dom_rows[dr][c0 + dc]
                iid = iid_rows[dr][c0 + dc]
                if d in regions:
                    n, ids = regions[d]
                    if iid:
                        ids.add(iid)
                    regions[d] = (n + 1, ids)
                else:
                    regions[d] = (1, {iid} if iid else set())
            sig = tuple(
                sorted((n, frozenset(ids)) for n, ids in regions.values())
            )
            sigs[sig] = sigs.get(sig, 0) + 1
    return sigs


def compute_mb_avf(
    array: SramArray,
    lifetimes: StructureLifetimes,
    mode: FaultMode,
    scheme: ProtectionScheme,
    *,
    due_preempts_sdc: bool = False,
    miscorrect_corrupts: bool = False,
    series_edges: Optional[Sequence[int]] = None,
) -> MbAvfResult:
    """Compute the DUE and SDC MB-AVF of ``array`` for one fault mode.

    ``due_preempts_sdc`` enables the Sec. VIII simultaneous-read rule (a
    detected region fires before an undetected region's data can propagate,
    e.g. inter-thread interleaving within one GPU wavefront read).

    ``series_edges`` optionally requests an AVF-over-time series with the
    given bucket boundaries (used for the paper's phase plots, Fig. 5/8).
    """
    tracer = get_tracer()
    metrics = get_metrics()
    with tracer.span(
        "enumerate",
        structure=lifetimes.name, mode=mode.name, scheme=scheme.name,
    ) as enum_span:
        byte2iid, isets = _canonical_iset_ids(lifetimes)
        sigs = _enumerate_signatures(array, byte2iid, mode)
    n_groups = array.n_groups(mode.height, mode.width)
    enum_span.set(groups=n_groups, signatures=len(sigs))
    if metrics:
        # The dedup hit-rate is 1 - signatures/groups: every group beyond
        # its signature's first is classified for free.
        metrics.counter("avf.computations").inc()
        metrics.counter("avf.groups_enumerated").inc(n_groups)
        metrics.counter("avf.unique_signatures").inc(len(sigs))

    region_ace_cache: Dict[FrozenSet[int], IntervalSet] = {}
    region_out_cache: Dict[Tuple[int, FrozenSet[int]], IntervalSet] = {}

    def region_outcome(n_bits: int, ids: FrozenSet[int]) -> IntervalSet:
        key = (n_bits, ids)
        cached = region_out_cache.get(key)
        if cached is not None:
            return cached
        ace = region_ace_cache.get(ids)
        if ace is None:
            ace = sweep_max([isets[i] for i in ids]) if ids else IntervalSet()
            region_ace_cache[ids] = ace
        out = classify_region(
            scheme.react(n_bits), ace, miscorrect_corrupts=miscorrect_corrupts
        )
        region_out_cache[key] = out
        return out

    outcome_cycles: Dict[Outcome, float] = {
        Outcome.FALSE_DUE: 0.0,
        Outcome.TRUE_DUE: 0.0,
        Outcome.SDC: 0.0,
    }
    edges = None
    series = None
    if series_edges is not None:
        edges = np.asarray(series_edges, dtype=np.int64)
        series = np.zeros((len(edges) - 1, 4), dtype=np.float64)

    with tracer.span("classify", signatures=len(sigs)):
        combined_by_sig: Dict[GroupSignature, IntervalSet] = {
            sig: combine_outcomes(
                [region_outcome(n, ids) for n, ids in sig],
                due_preempts_sdc=due_preempts_sdc,
            )
            for sig in sigs
        }
    if metrics:
        metrics.counter("avf.regions_classified").inc(len(region_out_cache))
    with tracer.span("integrate", signatures=len(sigs)):
        for sig, weight in sigs.items():
            combined = combined_by_sig[sig]
            if not combined:
                continue
            for s, e, c in combined:
                outcome_cycles[Outcome(c)] += weight * (e - s)
            if series is not None:
                tmp = np.zeros_like(series)
                combined.bucket_accumulate(edges, tmp)
                series += weight * tmp

    return MbAvfResult(
        structure=lifetimes.name,
        mode=mode,
        scheme=scheme.name,
        n_groups=n_groups,
        window_cycles=lifetimes.window_cycles,
        outcome_cycles=outcome_cycles,
        series_edges=edges,
        series=series,
    )


def compute_sb_avf(
    array: SramArray,
    lifetimes: StructureLifetimes,
    scheme: ProtectionScheme,
    *,
    series_edges: Optional[Sequence[int]] = None,
) -> MbAvfResult:
    """Single-bit AVF: MB-AVF of the degenerate 1x1 fault mode."""
    return compute_mb_avf(
        array, lifetimes, FaultMode.linear(1), scheme, series_edges=series_edges
    )


def merge_results(results: Sequence[MbAvfResult]) -> MbAvfResult:
    """Aggregate MB-AVF results over replicated structures.

    Used to combine the per-CU L1 caches, or the per-wavefront register
    files, into one structure-level AVF: outcome group-cycles and group
    counts add; all inputs must share the fault mode, scheme and analysis
    window.
    """
    if not results:
        raise ValueError("nothing to merge")
    first = results[0]
    outcome: Dict[Outcome, float] = {}
    n_groups = 0
    series = None
    for r in results:
        if r.mode != first.mode or r.scheme != first.scheme:
            raise ValueError("cannot merge results of different configurations")
        if r.window_cycles != first.window_cycles:
            raise ValueError("cannot merge results with different windows")
        n_groups += r.n_groups
        for o, cyc in r.outcome_cycles.items():
            outcome[o] = outcome.get(o, 0.0) + cyc
        if r.series is not None:
            series = r.series.copy() if series is None else series + r.series
    return MbAvfResult(
        structure=first.structure,
        mode=first.mode,
        scheme=first.scheme,
        n_groups=n_groups,
        window_cycles=first.window_cycles,
        outcome_cycles=outcome,
        series_edges=first.series_edges,
        series=series,
    )


def intersection_duration(a: IntervalSet, b: IntervalSet, klass: int) -> int:
    """Cycles during which *both* sets are in class >= ``klass``."""
    ivals_a = [(s, e) for s, e, c in a if c >= klass]
    ivals_b = [(s, e) for s, e, c in b if c >= klass]
    total = 0
    i = j = 0
    while i < len(ivals_a) and j < len(ivals_b):
        s = max(ivals_a[i][0], ivals_b[j][0])
        e = min(ivals_a[i][1], ivals_b[j][1])
        if s < e:
            total += e - s
        if ivals_a[i][1] < ivals_b[j][1]:
            i += 1
        else:
            j += 1
    return total


def ace_locality(array: SramArray, lifetimes: StructureLifetimes) -> float:
    """ACE locality: tendency of physically adjacent bits to be ACE together.

    Defined as the aggregate Jaccard overlap of ACE time between horizontally
    adjacent bit pairs::

        locality = sum_pairs |ACE_i ∩ ACE_j| / sum_pairs |ACE_i ∪ ACE_j|

    1.0 means neighbours are always ACE at exactly the same cycles (the MB-AVF
    of a fault covering them collapses to the SB-AVF); 0.0 means ACE time
    never overlaps (MB-AVF approaches M times SB-AVF).  Structures with high
    ACE locality have lower MB-AVF (Sec. VI-B).
    """
    byte2iid, isets = _canonical_iset_ids(lifetimes)
    iid_of = byte2iid[array.byte_of]
    pair_counts: Dict[Tuple[int, int], int] = {}
    for r in range(array.rows):
        row = iid_of[r]
        left, right = row[:-1], row[1:]
        keys = np.stack([left, right], axis=1)
        uniq, counts = np.unique(keys, axis=0, return_counts=True)
        for (a, b), n in zip(uniq, counts):
            pair_counts[(int(a), int(b))] = pair_counts.get((int(a), int(b)), 0) + int(n)
    inter = 0.0
    union = 0.0
    ace = int(AceClass.ACE)
    for (ia, ib), n in pair_counts.items():
        da = isets[ia].total_at_least(ace) if ia else 0
        db = isets[ib].total_at_least(ace) if ib else 0
        if da == 0 and db == 0:
            continue
        ov = intersection_duration(isets[ia], isets[ib], ace) if ia and ib else 0
        inter += n * ov
        union += n * (da + db - ov)
    return inter / union if union else 1.0
