"""Static report rendering: byte stability and section content."""

from types import SimpleNamespace

import pytest

from repro.report import build_report, render_index
from repro.store import ResultStore

from ..store.conftest import FakeCampaign, avf_row


@pytest.fixture
def store(tmp_path):
    with ResultStore(tmp_path / "r.sqlite") as s:
        yield s


def _seed(store):
    store.put_avf_rows(
        [
            avf_row(workload="matmul", structure="vgpr", scheme="parity",
                    style="inter_thread", factor=2, due_avf=0.4,
                    sdc_avf=0.1),
            avf_row(workload="matmul", structure="vgpr", scheme="none",
                    style="none", factor=1, due_avf=0.0, sdc_avf=0.5),
            avf_row(workload="transpose", structure="l2", scheme="sec-ded",
                    due_avf=0.2, sdc_avf=0.01),
        ]
    )
    store.put_mttf_rows(
        [
            SimpleNamespace(
                raw_fit_per_mbit=100.0, mttf_smbf_01pct=1.9e5,
                mttf_smbf_5pct=3.7e3, mttf_tmbf_unbounded=9.6e9,
                mttf_tmbf_100yr=8.4e8,
            )
        ],
        cache_bytes=32 << 20,
    )
    store.put_campaign(FakeCampaign(), seed=0, n_cus=2)


class TestRenderIndex:
    def test_empty_store_renders_placeholders(self, store):
        html = render_index(store)
        assert "<!DOCTYPE html>" in html
        assert "No stored MTTF rows" in html
        assert "No stored VGPR sweeps" in html
        assert "avf_results table is empty" in html

    def test_sections_render_from_store_contents(self, store):
        _seed(store)
        html = render_index(store)
        # Figure 2: cache label + fixed-precision MTTF numbers
        assert "32MB" in html and "1.900e+05" in html
        # Sec VIII: protection designs with layout labels, plus the SVG
        assert "parity inter_thread x2" in html
        assert "<svg" in html and "SDC" in html
        # full AVF table and Table II campaign summary
        assert "transpose" in html and "sec-ded" in html
        assert "vectoradd" in html

    def test_html_escapes_stored_strings(self, store):
        store.put_avf_rows([avf_row(workload="<script>alert(1)</script>")])
        html = render_index(store)
        assert "<script>alert" not in html
        assert "&lt;script&gt;" in html


class TestBuildReport:
    def test_build_is_byte_stable(self, store, tmp_path):
        _seed(store)
        first = build_report(store, tmp_path / "out1")
        second = build_report(store, tmp_path / "out2")
        assert first.read_bytes() == second.read_bytes()
        # rebuilding in place is also stable
        third = build_report(store, tmp_path / "out1")
        assert third == first
        assert first.read_bytes() == second.read_bytes()

    def test_build_tracks_new_rows(self, store, tmp_path):
        before = build_report(store, tmp_path / "a").read_bytes()
        _seed(store)
        after = build_report(store, tmp_path / "a").read_bytes()
        assert before != after

    def test_no_tmp_residue(self, store, tmp_path):
        build_report(store, tmp_path / "out")
        assert list((tmp_path / "out").glob("*.tmp")) == []
