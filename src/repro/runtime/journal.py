"""JSONL checkpoint journal: one line per completed task.

The journal is the campaign's crash-consistency mechanism (the same idea
DAVOS uses to make month-long FPGA injection runs restartable): every
*final* task result is appended as one self-contained JSON line and
flushed to disk, so a campaign killed at any point — including mid-write —
can be resumed by skipping every task the journal already holds.  A
truncated trailing line (the signature of a SIGKILL during ``write``) is
tolerated and ignored on load.
"""

from __future__ import annotations

import json
import os
import warnings
from pathlib import Path
from typing import Dict, Optional, TextIO, Union

__all__ = ["Journal"]

PathLike = Union[str, Path]


class Journal:
    """Append-only JSONL record of completed tasks, keyed by task id."""

    def __init__(self, path: PathLike) -> None:
        self.path = Path(path)
        if self.path.is_dir():
            raise ValueError(
                f"journal path {self.path} is a directory; pass a file path"
            )
        self._fh: Optional[TextIO] = None

    # -- reading ------------------------------------------------------------

    def load(self) -> Dict[str, dict]:
        """All journaled records by task id (later lines win).

        Malformed *interior* lines trigger a warning; a malformed *final*
        line is silently dropped — it is the expected residue of a driver
        killed mid-append.
        """
        records: Dict[str, dict] = {}
        if not self.path.exists():
            return records
        lines = self.path.read_text().splitlines()
        for i, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                if i != len(lines) - 1:
                    warnings.warn(
                        f"journal {self.path}: skipping malformed line {i + 1}",
                        stacklevel=2,
                    )
                continue
            task_id = rec.get("task")
            if isinstance(task_id, str):
                records[task_id] = rec
        return records

    # -- writing ------------------------------------------------------------

    def append(self, record: dict) -> None:
        """Durably append one task record (flush + fsync per line)."""
        if self._fh is None:
            if self.path.parent != Path("."):
                self.path.parent.mkdir(parents=True, exist_ok=True)
            # A journal truncated mid-line by a kill must not have the next
            # record appended onto the partial line: seal it first.
            needs_newline = False
            if self.path.exists() and self.path.stat().st_size:
                with self.path.open("rb") as fh:
                    fh.seek(-1, os.SEEK_END)
                    needs_newline = fh.read(1) != b"\n"
            self._fh = self.path.open("a")
            if needs_newline:
                self._fh.write("\n")
        try:
            line = json.dumps(record, sort_keys=True)
        except TypeError as exc:
            raise TypeError(
                "journal records must be JSON-serialisable; task functions "
                "used with a journal must return JSON-safe values "
                f"(task {record.get('task')!r}): {exc}"
            ) from exc
        self._fh.write(line + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
