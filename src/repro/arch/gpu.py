"""SIMT GPU / APU performance simulator.

Executes :class:`~repro.arch.isa.Program` kernels on a model with ``n_cus``
compute units, 16-lane wavefronts, per-CU L1 caches and a shared L2
(:mod:`repro.arch.cache`).  Every vector instruction is recorded as an
:class:`~repro.arch.trace.InstrRecord` for the downstream liveness and
lifetime (ACE) analyses — the "event-tracking phase" of the paper's AVF
methodology.

The timing model is deliberately simple but produces the behaviour the
paper's results depend on: one instruction per CU per cycle, round-robin
wavefront scheduling, blocking loads with hit/miss latencies, buffered
stores, and latency hiding across wavefronts.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..obs import get_metrics, get_tracer
from .cache import L1_CONFIG, L2_CONFIG, CacheConfig, MemSystem
from .isa import WAVEFRONT_LANES, Instr, Program
from .memory import GlobalMemory, Lds
from .trace import InstrRecord

__all__ = ["Wavefront", "ComputeUnit", "Apu", "LaunchStats"]

M32 = 0xFFFFFFFF
_LANES = np.arange(WAVEFRONT_LANES)


@dataclass
class LaunchStats:
    """Summary of one kernel launch."""

    name: str
    n_threads: int
    n_wavefronts: int
    instructions: int = 0
    start_cycle: int = 0
    end_cycle: int = 0

    @property
    def cycles(self) -> int:
        return self.end_cycle - self.start_cycle


class Wavefront:
    """Architectural state of one 16-lane wavefront."""

    __slots__ = (
        "id", "pc", "vregs", "sregs", "vcc", "scc", "exec_mask",
        "ready", "done", "lds", "program",
    )

    def __init__(
        self,
        wf_id: int,
        program: Program,
        exec_mask: np.ndarray,
        sregs: List[int],
        lds: Lds,
    ) -> None:
        self.id = wf_id
        self.pc = 0
        self.program = program
        self.vregs = np.zeros((program.n_vregs, WAVEFRONT_LANES), dtype=np.uint32)
        self.sregs = sregs + [0] * max(0, program.n_sregs - len(sregs))
        self.vcc = np.zeros(WAVEFRONT_LANES, dtype=bool)
        self.scc = False
        self.exec_mask = exec_mask
        self.ready = 0
        self.done = False
        self.lds = lds


class ComputeUnit:
    """One compute unit: issues one instruction per cycle, round-robin."""

    def __init__(self, cu_id: int, apu: "Apu", max_resident: int = 8) -> None:
        self.id = cu_id
        self.apu = apu
        self.max_resident = max_resident
        self.resident: List[Wavefront] = []
        self.pending: deque = deque()
        self._rr = 0

    def busy(self) -> bool:
        return bool(self.resident) or bool(self.pending)

    def _admit(self, cycle: int) -> None:
        while self.pending and len(self.resident) < self.max_resident:
            wf = self.pending.popleft()
            wf.ready = cycle
            self.resident.append(wf)

    def step(self, cycle: int) -> Optional[int]:
        """Issue at most one instruction; returns the next interesting cycle.

        Returns the cycle at which this CU could issue next (``cycle + 1``
        if it issued, the earliest wavefront-ready time if all are stalled,
        or None if the CU has nothing left to run).
        """
        self._admit(cycle)
        if not self.resident:
            return None
        n = len(self.resident)
        for k in range(n):
            wf = self.resident[(self._rr + k) % n]
            if wf.ready <= cycle:
                self._rr = (self._rr + k + 1) % n
                self.apu._execute(self, wf, cycle)
                if wf.done:
                    self.resident.remove(wf)
                    self._admit(cycle)
                return cycle + 1
        return min(wf.ready for wf in self.resident)


class Apu:
    """The simulated APU: GPU compute units + cache hierarchy + memory."""

    def __init__(
        self,
        n_cus: int = 4,
        memory: Optional[GlobalMemory] = None,
        l1_config: CacheConfig = L1_CONFIG,
        l2_config: CacheConfig = L2_CONFIG,
        max_resident_wavefronts: int = 8,
        lds_bytes: int = 4096,
        max_cycles: int = 50_000_000,
    ) -> None:
        self.memory = memory if memory is not None else GlobalMemory()
        self.memsys = MemSystem(n_cus, l1_config, l2_config)
        self.cus = [ComputeUnit(i, self, max_resident_wavefronts) for i in range(n_cus)]
        self.lds_bytes = lds_bytes
        self.max_cycles = max_cycles
        self.cycle = 0
        self.records: List[InstrRecord] = []
        self.launches: List[LaunchStats] = []
        self.wf_programs: Dict[int, Program] = {}
        self._uid = 0
        self._wf_seq = 0
        self._finished = False
        self._injections: Dict[int, List[Tuple[int, int, int, int]]] = {}
        self._mem_injections: List[Tuple[int, int, int]] = []

    def inject_memory_fault(self, addr: int, bitmask: int, cycle: int) -> None:
        """Schedule a transient fault in the memory/cache data image.

        Flips ``bitmask`` bits of the byte at ``addr`` once the global clock
        reaches ``cycle``.  Because the hierarchy is modelled as coherent
        (functional data lives in one image), this represents a fault in
        whichever copy of the byte is current at that time.
        """
        self._mem_injections.append((cycle, addr, bitmask & 0xFF))
        self._mem_injections.sort()

    def _apply_mem_injections(self) -> None:
        while self._mem_injections and self._mem_injections[0][0] <= self.cycle:
            _, addr, bitmask = self._mem_injections.pop(0)
            if 0 <= addr < self.memory.size:
                self.memory.data[addr] ^= np.uint8(bitmask)

    def inject_fault(
        self, wf_id: int, reg: int, lane: int, bitmask: int, cycle: int
    ) -> None:
        """Schedule a transient fault: flip ``bitmask`` bits of a register.

        The flip is applied to wavefront ``wf_id``'s ``reg`` at ``lane`` the
        next time the wavefront issues an instruction at or after ``cycle``
        (the fault persists until then, as a real SRAM flip would).  Used by
        the fault-injection campaigns (:mod:`repro.faultinject`).
        """
        self._injections.setdefault(wf_id, []).append(
            (cycle, reg, lane, bitmask & M32)
        )

    def _apply_injections(self, wf: Wavefront, t: int) -> None:
        pending = self._injections.get(wf.id)
        if not pending:
            return
        rest = []
        for cycle, reg, lane, bitmask in pending:
            if cycle <= t:
                if reg < wf.vregs.shape[0]:
                    wf.vregs[reg][lane] ^= np.uint32(bitmask)
            else:
                rest.append((cycle, reg, lane, bitmask))
        if rest:
            self._injections[wf.id] = rest
        else:
            del self._injections[wf.id]

    @property
    def finished(self) -> bool:
        return self._finished

    # -- kernel launch -----------------------------------------------------

    def launch(
        self,
        program: Program,
        n_threads: int,
        args: Sequence[int] = (),
        name: str = "kernel",
    ) -> LaunchStats:
        """Run a kernel to completion over ``n_threads`` work-items.

        Wavefronts are distributed round-robin over the compute units; the
        global clock keeps advancing across launches so multi-pass workloads
        share one AVF analysis window.
        """
        if self._finished:
            raise RuntimeError("device already finished; create a new Apu")
        if n_threads <= 0:
            raise ValueError("kernel needs at least one thread")
        n_wfs = (n_threads + WAVEFRONT_LANES - 1) // WAVEFRONT_LANES
        stats = LaunchStats(name, n_threads, n_wfs, start_cycle=self.cycle)
        for i in range(n_wfs):
            wf_id = self._wf_seq
            self._wf_seq += 1
            base = i * WAVEFRONT_LANES
            exec_mask = (base + _LANES) < n_threads
            sregs = [i, wf_id] + [int(a) & M32 for a in args]
            wf = Wavefront(wf_id, program, exec_mask, sregs, Lds(self.lds_bytes))
            self.wf_programs[wf_id] = program
            wf.vregs[0] = (base + _LANES).astype(np.uint32)  # v0 = global tid
            wf.vregs[1] = _LANES.astype(np.uint32)           # v1 = lane id
            self.cus[i % len(self.cus)].pending.append(wf)
        n_before = len(self.records)
        with get_tracer().span("kernel", kernel=name, wavefronts=n_wfs) as sp:
            self._run()
        stats.instructions = len(self.records) - n_before
        stats.end_cycle = self.cycle
        # The span's args dict is shared with the recorded event, so the
        # counts become visible in the exported trace.
        sp.set(instructions=stats.instructions, cycles=stats.cycles)
        mx = get_metrics()
        if mx:
            mx.counter("sim.kernel_launches").inc()
            mx.counter("sim.instructions").inc(stats.instructions)
            mx.counter("sim.cycles").inc(stats.cycles)
        self.launches.append(stats)
        return stats

    def stats(self) -> Dict[str, object]:
        """Summary statistics of everything executed so far.

        Returns instruction/cycle counts, aggregate IPC, and per-level cache
        hit rates — the quick sanity panel for a workload's behaviour.
        """
        total_instr = len(self.records)
        cycles = max(self.cycle, 1)
        l1_hits = sum(l1.hits for l1 in self.memsys.l1s)
        l1_misses = sum(l1.misses for l1 in self.memsys.l1s)
        l2 = self.memsys.l2
        def _rate(h: int, m: int) -> float:
            return h / (h + m) if (h + m) else 0.0
        return {
            "instructions": total_instr,
            "cycles": self.cycle,
            "ipc": total_instr / cycles,
            "wavefronts": self._wf_seq,
            "launches": len(self.launches),
            "l1_hit_rate": _rate(l1_hits, l1_misses),
            "l1_accesses": l1_hits + l1_misses,
            "l2_hit_rate": _rate(l2.hits, l2.misses),
            "l2_accesses": l2.hits + l2.misses,
        }

    def finish(self) -> int:
        """Flush the cache hierarchy (host readback); returns the end cycle.

        Must be called exactly once, after the last kernel launch, before
        running the AVF analyses.
        """
        if self._finished:
            raise RuntimeError("finish() already called")
        self.memsys.flush(self.cycle)
        self.cycle += 1
        self._finished = True
        mx = get_metrics()
        if mx:
            mx.counter("sim.l1_hits").inc(sum(c.hits for c in self.memsys.l1s))
            mx.counter("sim.l1_misses").inc(
                sum(c.misses for c in self.memsys.l1s)
            )
            mx.counter("sim.l2_hits").inc(self.memsys.l2.hits)
            mx.counter("sim.l2_misses").inc(self.memsys.l2.misses)
        return self.cycle

    def _run(self) -> None:
        while any(cu.busy() for cu in self.cus):
            if self._mem_injections:
                self._apply_mem_injections()
            nxt: List[int] = []
            for cu in self.cus:
                r = cu.step(self.cycle)
                if r is not None:
                    nxt.append(r)
            if not nxt:
                break
            self.cycle = max(self.cycle + 1, min(nxt))
            if self.cycle > self.max_cycles:
                raise RuntimeError("simulation exceeded max_cycles (runaway kernel?)")

    # -- operand access ----------------------------------------------------

    def _fetch_v(self, wf: Wavefront, op) -> np.ndarray:
        kind, x = op
        if kind == "v":
            return wf.vregs[x]
        if kind == "s":
            return np.full(WAVEFRONT_LANES, wf.sregs[x] & M32, dtype=np.uint32)
        return np.full(WAVEFRONT_LANES, x & M32, dtype=np.uint32)

    def _fetch_s(self, wf: Wavefront, op) -> int:
        kind, x = op
        if kind == "s":
            return wf.sregs[x]
        if kind == "imm":
            return x & M32
        raise ValueError("scalar instructions cannot read vector registers")

    @staticmethod
    def _write_v(wf: Wavefront, dst, value: np.ndarray, mask: np.ndarray) -> None:
        reg = wf.vregs[dst[1]]
        reg[mask] = value.astype(np.uint32)[mask]

    # -- execution ---------------------------------------------------------

    def _record(self, wf: Wavefront, ins: Instr, t: int, **kw) -> InstrRecord:
        rec = InstrRecord(
            self._uid, t, wf.id, ins.op, ins.dst, ins.srcs,
            wf.exec_mask.copy(), **kw
        )
        self._uid += 1
        self.records.append(rec)
        return rec

    def _execute(self, cu: ComputeUnit, wf: Wavefront, t: int) -> None:
        if self._injections:
            self._apply_injections(wf, t)
        ins = wf.program.instrs[wf.pc]
        op = ins.op
        next_pc = wf.pc + 1
        wf.ready = t + 1

        if op == "s_endpgm":
            wf.done = True
            return
        if op == "s_branch":
            wf.pc = wf.program.target_pc(ins.target)
            return
        if op == "s_cbranch":
            want = bool(ins.srcs[0][1])
            wf.pc = wf.program.target_pc(ins.target) if wf.scc == want else next_pc
            return
        if op == "s_cmp":
            a = _signed(self._fetch_s(wf, ins.srcs[0]))
            b = _signed(self._fetch_s(wf, ins.srcs[1]))
            wf.scc = _compare_scalar(ins.cond, a, b)
            wf.pc = next_pc
            return
        if op in ("s_mov", "s_add", "s_sub", "s_mul", "s_shl", "s_shr"):
            srcs = [self._fetch_s(wf, x) for x in ins.srcs]
            if op == "s_mov":
                val = srcs[0]
            elif op == "s_add":
                val = srcs[0] + srcs[1]
            elif op == "s_sub":
                val = srcs[0] - srcs[1]
            elif op == "s_mul":
                val = srcs[0] * srcs[1]
            elif op == "s_shl":
                val = srcs[0] << (srcs[1] & 31)
            else:
                val = (srcs[0] & M32) >> (srcs[1] & 31)
            wf.sregs[ins.dst[1]] = val & M32
            wf.pc = next_pc
            return
        if op == "v_readlane":
            lane = int(ins.srcs[1][1])
            src = self._fetch_v(wf, ins.srcs[0])
            wf.sregs[ins.dst[1]] = int(src[lane])
            self._record(wf, ins, t)
            wf.pc = next_pc
            return

        if op in ("v_load", "v_store", "v_load_u8", "v_store_u8",
                  "lds_load", "lds_store"):
            self._exec_memory(cu, wf, ins, t)
            wf.pc = next_pc
            return

        # Vector ALU.
        self._exec_valu(wf, ins, t)
        wf.pc = next_pc

    def _exec_valu(self, wf: Wavefront, ins: Instr, t: int) -> None:
        op = ins.op
        mask = wf.exec_mask
        if op in ("v_cndmask",):
            rec = self._record(wf, ins, t, vcc_snap=wf.vcc.copy())
        else:
            rec = self._record(wf, ins, t)
        srcs = [self._fetch_v(wf, x) for x in ins.srcs]

        if op == "v_mov":
            res = srcs[0].copy()
        elif op == "v_add":
            res = srcs[0] + srcs[1]
        elif op == "v_sub":
            res = srcs[0] - srcs[1]
        elif op == "v_mul":
            res = srcs[0] * srcs[1]
        elif op == "v_and":
            res = srcs[0] & srcs[1]
        elif op == "v_or":
            res = srcs[0] | srcs[1]
        elif op == "v_xor":
            res = srcs[0] ^ srcs[1]
        elif op == "v_not":
            res = ~srcs[0]
        elif op == "v_shl":
            res = srcs[0] << (srcs[1] & np.uint32(31))
        elif op == "v_shr":
            res = srcs[0] >> (srcs[1] & np.uint32(31))
        elif op == "v_ashr":
            res = (srcs[0].view(np.int32) >> (srcs[1] & np.uint32(31)).view(np.int32)).view(np.uint32)
        elif op == "v_min":
            res = np.minimum(srcs[0].view(np.int32), srcs[1].view(np.int32)).view(np.uint32)
        elif op == "v_max":
            res = np.maximum(srcs[0].view(np.int32), srcs[1].view(np.int32)).view(np.uint32)
        elif op == "v_abs":
            res = np.abs(srcs[0].view(np.int32)).view(np.uint32)
        elif op in ("v_cmp", "v_fcmp"):
            if op == "v_cmp":
                a, b = srcs[0].view(np.int32), srcs[1].view(np.int32)
            else:
                a, b = srcs[0].view(np.float32), srcs[1].view(np.float32)
            res_b = _compare_vector(ins.cond, a, b)
            wf.vcc = np.where(mask, res_b, wf.vcc)
            return
        elif op == "v_cndmask":
            res = np.where(wf.vcc, srcs[0], srcs[1])
        elif op == "v_shuffle_up":
            delta = int(ins.srcs[1][1])
            res = np.zeros(WAVEFRONT_LANES, dtype=np.uint32)
            if delta < WAVEFRONT_LANES:
                res[delta:] = srcs[0][: WAVEFRONT_LANES - delta]
        elif op == "v_shuffle_xor":
            xm = int(ins.srcs[1][1])
            res = srcs[0][_LANES ^ xm].astype(np.uint32)
        elif op in ("v_cvt_i2f",):
            res = srcs[0].view(np.int32).astype(np.float32).view(np.uint32)
        elif op in ("v_cvt_f2i",):
            with np.errstate(invalid="ignore"):
                f = srcs[0].view(np.float32)
                res = np.where(
                    np.isfinite(f), f, 0.0
                ).astype(np.int32).view(np.uint32)
        else:
            res = self._exec_float(op, srcs)
        self._write_v(wf, ins.dst, res, mask)

    @staticmethod
    def _exec_float(op: str, srcs: List[np.ndarray]) -> np.ndarray:
        fs = [x.view(np.float32) for x in srcs]
        with np.errstate(divide="ignore", invalid="ignore", over="ignore",
                         under="ignore"):
            if op == "v_fadd":
                out = fs[0] + fs[1]
            elif op == "v_fsub":
                out = fs[0] - fs[1]
            elif op == "v_fmul":
                out = fs[0] * fs[1]
            elif op == "v_fmac":
                out = fs[2] + fs[0] * fs[1]
            elif op == "v_frcp":
                out = np.float32(1.0) / fs[0]
            elif op == "v_fsqrt":
                out = np.sqrt(fs[0])
            elif op == "v_fexp":
                out = np.exp(fs[0])
            elif op == "v_flog":
                out = np.log(np.abs(fs[0]))
            elif op == "v_fmin":
                out = np.minimum(fs[0], fs[1])
            elif op == "v_fmax":
                out = np.maximum(fs[0], fs[1])
            elif op == "v_fabs":
                out = np.abs(fs[0])
            else:  # pragma: no cover - guarded by ISA validation
                raise ValueError(f"unhandled op {op}")
        return np.nan_to_num(out.astype(np.float32), nan=0.0).view(np.uint32)

    def _exec_memory(self, cu: ComputeUnit, wf: Wavefront, ins: Instr, t: int) -> None:
        op = ins.op
        is_store = op.endswith("store") or "store" in op
        is_lds = op.startswith("lds")
        nbytes = 1 if op.endswith("_u8") else 4
        addr_src = ins.srcs[1] if is_store else ins.srcs[0]
        addrs = (self._fetch_v(wf, addr_src) + np.uint32(ins.offset)).astype(np.uint32)
        active = wf.exec_mask & (wf.vcc if ins.predicated else True)
        rec = self._record(
            wf, ins, t,
            addrs=addrs.copy(), nbytes=nbytes, acc_mask=active.copy(),
            vcc_snap=wf.vcc.copy() if ins.predicated else None,
            space="lds" if is_lds else "global",
        )
        lat = 2 if is_lds else 1
        if active.any():
            aa = addrs[active]
            if is_lds:
                store_fn = wf.lds.store32
                if is_store:
                    vals = self._fetch_v(wf, ins.srcs[0])[active]
                    if nbytes == 1:
                        wf.lds.data[aa] = (vals & 0xFF).astype(np.uint8)
                    else:
                        store_fn(aa, vals)
                else:
                    vals = (
                        wf.lds.data[aa].astype(np.uint32)
                        if nbytes == 1 else wf.lds.load32(aa)
                    )
                    out = self._fetch_v(wf, ins.dst).copy()
                    out[active] = vals
                    self._write_v(wf, ins.dst, out, active)
            else:
                if is_store:
                    vals = self._fetch_v(wf, ins.srcs[0])[active]
                    if nbytes == 1:
                        self.memory.store8(aa, vals)
                    else:
                        self.memory.store32(aa, vals)
                    lat = self.memsys.store(cu.id, aa, nbytes, t, rec.uid)
                else:
                    vals = (
                        self.memory.load8(aa) if nbytes == 1
                        else self.memory.load32(aa)
                    )
                    out = self._fetch_v(wf, ins.dst).copy()
                    out[active] = vals
                    self._write_v(wf, ins.dst, out, active)
                    lat = self.memsys.load(cu.id, aa, nbytes, t, rec.uid)
        wf.ready = t + lat


def _signed(x: int) -> int:
    x &= M32
    return x - (1 << 32) if x & 0x80000000 else x


def _compare_scalar(cond: str, a: int, b: int) -> bool:
    if cond == "lt":
        return a < b
    if cond == "le":
        return a <= b
    if cond == "eq":
        return a == b
    if cond == "ne":
        return a != b
    if cond == "gt":
        return a > b
    return a >= b


def _compare_vector(cond: str, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    if cond == "lt":
        return a < b
    if cond == "le":
        return a <= b
    if cond == "eq":
        return a == b
    if cond == "ne":
        return a != b
    if cond == "gt":
        return a > b
    return a >= b
