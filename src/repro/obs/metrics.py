"""Lightweight metrics: counters, gauges and fixed-bucket histograms.

The registry is built for a hot simulator loop written in Python: an
instrument is a plain object holding a Python int/float/list, and there
are no label dictionaries on the fast path.  Disabled mode is a
:class:`NullRegistry` whose instruments are shared no-op singletons, so
instrumentation left in the hot layers costs one global lookup plus a
no-op method call — and touches **no lock** (the overhead contract is
asserted by ``benchmarks/test_perf_obs_overhead.py``: < 2% on the
engine workload).

Enabled-mode instruments ARE thread-safe: since the fabric coordinator,
the service guard and the report service run HTTP handler threads that
increment counters while the driver snapshots or resets the same
registry, every mutation and read goes through a per-instrument lock,
and the registry's create-or-get tables are guarded by a registry lock
(lock order: registry before instrument — instrument methods never take
the registry lock, so the order cannot invert).  Unsynchronized, a
driver ``reset()`` racing a handler ``inc()`` loses updates, and
``snapshot()`` iterating a dict a handler thread is growing raises
``RuntimeError: dictionary changed size during iteration``.
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "DEFAULT_LATENCY_BUCKETS",
]

#: geometric wall-clock buckets (seconds) for task/stage latency histograms
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 300.0, 1800.0,
)


class Counter:
    """A monotonically increasing tally (thread-safe)."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self._value += n

    def reset(self) -> None:
        with self._lock:
            self._value = 0


class Gauge:
    """A point-in-time value (last write wins, thread-safe)."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0


class Histogram:
    """Fixed-bucket histogram of observed values.

    ``bounds`` are the inclusive upper edges of the finite buckets; one
    implicit overflow bucket catches everything above the last bound.
    """

    __slots__ = ("name", "bounds", "_lock", "_counts", "_sum", "_count")

    def __init__(
        self, name: str, bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS
    ) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be a sorted non-empty list")
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        self._lock = threading.Lock()
        self._counts: List[int] = [0] * (len(self.bounds) + 1)
        self._sum = 0.0
        self._count = 0

    @property
    def counts(self) -> List[int]:
        with self._lock:
            return list(self._counts)

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def observe(self, value: float) -> None:
        with self._lock:
            self._counts[bisect_left(self.bounds, value)] += 1
            self._sum += value
            self._count += 1

    def reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self.bounds) + 1)
            self._sum = 0.0
            self._count = 0

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate (upper edge of the bucket).

        The overflow bucket reports the last finite bound; an empty
        histogram reports 0.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        with self._lock:
            if not self._count:
                return 0.0
            target = q * self._count
            seen = 0
            for i, n in enumerate(self._counts):
                seen += n
                if seen >= target:
                    return self.bounds[min(i, len(self.bounds) - 1)]
            return self.bounds[-1]

    def to_dict(self) -> Dict:
        with self._lock:
            return {
                "bounds": list(self.bounds),
                "counts": list(self._counts),
                "sum": self._sum,
                "count": self._count,
            }


_PROM_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(prefix: str, name: str) -> str:
    """``avf.batch_cache_hits`` → ``repro_avf_batch_cache_hits``."""
    return _PROM_BAD_CHARS.sub("_", f"{prefix}_{name}" if prefix else name)


def _prom_value(v: float) -> str:
    """Render numbers the way Prometheus parsers expect (ints bare)."""
    if isinstance(v, int):
        return str(v)
    f = float(v)
    return str(int(f)) if f.is_integer() else repr(f)


class MetricsRegistry:
    """Create-or-get registry of named instruments.

    Truthy, so hot paths can guard optional work with ``if registry:``;
    the disabled :class:`NullRegistry` is falsy.
    """

    def __init__(self) -> None:
        #: guards the create-or-get tables; instrument state has its own
        #: per-instrument lock (order: registry lock before instrument
        #: lock — instrument methods never take the registry lock)
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def __bool__(self) -> bool:
        return True

    def counter(self, name: str) -> Counter:
        with self._lock:
            c = self._counters.get(name)
            if c is None:
                c = self._counters[name] = Counter(name)
            return c

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            g = self._gauges.get(name)
            if g is None:
                g = self._gauges[name] = Gauge(name)
            return g

    def histogram(
        self, name: str, bounds: Optional[Sequence[float]] = None
    ) -> Histogram:
        with self._lock:
            h = self._histograms.get(name)
            if h is None:
                h = self._histograms[name] = Histogram(
                    name,
                    bounds if bounds is not None else DEFAULT_LATENCY_BUCKETS,
                )
            return h

    def snapshot(self) -> Dict:
        """JSON-safe dump of every instrument's current state."""
        with self._lock:
            return {
                "counters": {
                    n: c.value for n, c in sorted(self._counters.items())
                },
                "gauges": {
                    n: g.value for n, g in sorted(self._gauges.items())
                },
                "histograms": {
                    n: h.to_dict() for n, h in sorted(self._histograms.items())
                },
            }

    def reset(self) -> None:
        """Zero every instrument (identities are preserved)."""
        with self._lock:
            for c in self._counters.values():
                c.reset()
            for g in self._gauges.values():
                g.reset()
            for h in self._histograms.values():
                h.reset()

    def to_prometheus(self, prefix: str = "repro") -> str:
        """Render every instrument in the Prometheus text exposition format.

        Instrument names are mapped to metric names by prefixing and
        sanitizing (``avf.batch_cache_hits`` → ``repro_avf_batch_cache_hits``);
        counters get a ``_total`` suffix per the naming conventions, and
        histograms are emitted with cumulative ``_bucket{le=...}`` series
        plus ``_sum``/``_count``, ending in ``le="+Inf"``.
        """
        lines: List[str] = []
        with self._lock:
            for name, c in sorted(self._counters.items()):
                metric = _prom_name(prefix, name) + "_total"
                lines.append(f"# TYPE {metric} counter")
                lines.append(f"{metric} {_prom_value(c.value)}")
            for name, g in sorted(self._gauges.items()):
                metric = _prom_name(prefix, name)
                lines.append(f"# TYPE {metric} gauge")
                lines.append(f"{metric} {_prom_value(g.value)}")
            for name, h in sorted(self._histograms.items()):
                metric = _prom_name(prefix, name)
                lines.append(f"# TYPE {metric} histogram")
                cum = 0
                for bound, n in zip(h.bounds, h.counts):
                    cum += n
                    lines.append(
                        f'{metric}_bucket{{le="{_prom_value(bound)}"}} {cum}'
                    )
                lines.append(f'{metric}_bucket{{le="+Inf"}} {h.count}')
                lines.append(f"{metric}_sum {_prom_value(h.sum)}")
                lines.append(f"{metric}_count {h.count}")
        return "\n".join(lines) + "\n" if lines else ""


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, n: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


_NULL_COUNTER = _NullCounter("null")
_NULL_GAUGE = _NullGauge("null")
_NULL_HISTOGRAM = _NullHistogram("null", (1.0,))


class NullRegistry(MetricsRegistry):
    """Disabled-mode registry: falsy, hands out shared no-op instruments."""

    def __bool__(self) -> bool:
        return False

    def counter(self, name: str) -> Counter:
        return _NULL_COUNTER

    def gauge(self, name: str) -> Gauge:
        return _NULL_GAUGE

    def histogram(
        self, name: str, bounds: Optional[Sequence[float]] = None
    ) -> Histogram:
        return _NULL_HISTOGRAM

    def snapshot(self) -> Dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}


#: the process-wide disabled registry (see :func:`repro.obs.get_metrics`)
NULL_REGISTRY = NullRegistry()
