"""Shared paths and a session-scoped fixture lint run."""

from pathlib import Path

import pytest

from repro.staticcheck import run

HERE = Path(__file__).resolve().parent
FIXTURES = HERE / "fixtures"
REPO = HERE.parents[1]
SRC_REPRO = REPO / "src" / "repro"
BASELINE = REPO / "tools" / "staticcheck_baseline.json"


@pytest.fixture(scope="session")
def fixture_result():
    """One lint run over the whole fixture tree, shared by rule tests."""
    return run([FIXTURES])


@pytest.fixture(scope="session")
def fixture_findings(fixture_result):
    return fixture_result.findings


def findings_for(findings, rule):
    """(path, line) pairs of one rule's findings, sorted."""
    return sorted((f.path, f.line) for f in findings if f.rule == rule)
