"""Ingest is idempotent: every producer path re-ingests as a no-op."""

import json

from repro.runtime.fabric import merge_shards
from repro.store import (
    ingest_campaign,
    ingest_journal,
    ingest_results,
    ingest_sweep_points,
)

from .conftest import (
    FakeCampaign,
    avf_row,
    fake_result,
    injection_record,
    point_record,
    sweep_point,
    write_journal,
)


class TestAvfRows:
    def test_insert_then_reinsert_dedupes(self, store):
        assert store.put_avf_rows([avf_row()]) == (1, 0)
        assert store.put_avf_rows([avf_row()]) == (0, 1)
        assert len(store.query()) == 1

    def test_source_is_not_part_of_the_key(self, store):
        # The same measurement arriving from two provenances (live run,
        # then journal re-ingest) is one row.
        store.put_avf_rows([avf_row(source="cli/avf")])
        assert store.put_avf_rows(
            [avf_row(source="/tmp/campaign.jsonl")]
        ) == (0, 1)
        assert len(store.query()) == 1

    def test_key_columns_distinguish_rows(self, store):
        rows = [
            avf_row(),
            avf_row(workload="transpose"),
            avf_row(mode="4x1"),
            avf_row(seed=7),
            avf_row(scheme="sec-ded"),
        ]
        assert store.put_avf_rows(rows) == (5, 0)

    def test_defaults_are_filled(self, store):
        minimal = {
            "workload": "matmul", "structure": "l1", "scheme": "none",
            "style": "none", "factor": 1, "mode": "2x1",
            "due_avf": 0.5, "sdc_avf": 0.25,
            "true_due_avf": 0.4, "false_due_avf": 0.1,
        }
        store.put_avf_rows([minimal])
        row = store.query()[0]
        assert row.ser_model == "none" and row.seed == 0
        assert row.total_avf == 0.75
        assert row.engine_version

    def test_empty_batch_is_a_noop(self, store):
        assert store.put_avf_rows([]) == (0, 0)


class TestSweepPointsAndResults:
    def test_ingest_sweep_points_round_trip(self, store):
        points = [sweep_point(), sweep_point(mode="2x2", factor=4)]
        counts = ingest_sweep_points(
            store, points, workload="matmul", seed=3
        )
        assert counts == {"rows": 2, "ingested": 2, "deduped": 0}
        again = ingest_sweep_points(store, points, workload="matmul", seed=3)
        assert again == {"rows": 2, "ingested": 0, "deduped": 2}
        row = store.query(mode="2x1")[0]
        assert (row.workload, row.seed, row.style) == \
            ("matmul", 3, "inter_thread")

    def test_ingest_results_carries_layout(self, store):
        counts = ingest_results(
            store, [fake_result()], workload="stencil",
            style="intra_word", factor=2, source="batch",
        )
        assert counts["ingested"] == 1
        row = store.query()[0]
        assert (row.style, row.factor, row.mode) == ("intra_word", 2, "3x1")
        assert row.n_groups == 32 and row.window_cycles == 256
        assert ingest_results(
            store, [fake_result()], workload="stencil",
            style="intra_word", factor=2,
        )["deduped"] == 1


class TestCampaigns:
    def test_campaign_round_trip_and_idempotence(self, store):
        campaign = FakeCampaign()
        assert ingest_campaign(
            store, campaign, seed=1, n_cus=2
        )["ingested"] == 1
        assert ingest_campaign(
            store, campaign, seed=1, n_cus=2
        )["deduped"] == 1
        stored = store.campaigns()
        assert len(stored) == 1
        assert stored[0]["benchmark"] == "vectoradd"
        assert stored[0]["single_outcomes"] == {"masked": 9, "sdc": 3}
        assert stored[0]["multibit"] == {"2x1": [1, 0, 1]}

    def test_distinct_seeds_are_distinct_rows(self, store):
        ingest_campaign(store, FakeCampaign(), seed=1)
        ingest_campaign(store, FakeCampaign(), seed=2)
        assert len(store.campaigns()) == 2


class TestJournalIngest:
    def test_classification_and_counts(self, store, tmp_path):
        path = write_journal(
            tmp_path / "campaign.jsonl",
            [
                point_record("grid/vgpr/matmul/c0"),
                injection_record("vectoradd/single/0001"),
                # failed cell: no value to store
                point_record(
                    "grid/vgpr/matmul/c1", outcome="timeout", value=None
                ),
                # unclassifiable record: skipped, not an error
                {"task": "golden/run", "outcome": "ok", "value": 42,
                 "error": None, "attempts": 1, "duration": 0.1},
            ],
        )
        counts = ingest_journal(store, path)
        assert counts["records"] == 4
        assert counts["avf_rows"] == 1
        assert counts["injections"] == 1
        assert counts["skipped"] == 2
        assert counts["ingested"] == 2

    def test_reingest_is_a_noop(self, store, tmp_path):
        path = write_journal(
            tmp_path / "c.jsonl",
            [point_record("grid/vgpr/matmul/c0"),
             injection_record("vectoradd/single/0001")],
        )
        ingest_journal(store, path)
        counts = ingest_journal(store, path)
        assert counts["ingested"] == 0
        assert counts["deduped"] == 2

    def test_injection_rows_decode_spec_meta(self, store, tmp_path):
        path = write_journal(
            tmp_path / "c.jsonl",
            [injection_record("vectoradd/single/0001", verdict="sdc"),
             injection_record(
                 "vectoradd/multi/2x1/0002", verdict=None,
                 outcome="sim_crash", value=None,
             )],
        )
        ingest_journal(store, path, source="campaign-7")
        stats = {
            (s["verdict"], s["count"]) for s in store.injection_stats()
        }
        # sim_crash maps onto the crash verdict even with no value
        assert stats == {("sdc", 1), ("crash", 1)}
        conn = store._conn
        row = conn.execute(
            "SELECT source, benchmark, wf, bits FROM injections "
            "WHERE task = 'vectoradd/single/0001'"
        ).fetchone()
        assert row["source"] == "campaign-7"
        assert row["benchmark"] == "vectoradd"
        assert row["wf"] == 1
        assert json.loads(row["bits"]) == [3]

    def test_workload_falls_back_to_argument(self, store, tmp_path):
        rec = point_record("grid/vgpr/x/c0")
        del rec["meta"]
        path = write_journal(tmp_path / "c.jsonl", [rec])
        ingest_journal(store, path, workload="stencil")
        assert store.query()[0].workload == "stencil"

    def test_points_list_record(self, store, tmp_path):
        cells = [sweep_point(), sweep_point(mode="4x1")]
        rec = point_record("sweep/vgpr/matmul")
        rec["value"] = [
            point_record("x", point=c)["value"] for c in cells
        ]
        path = write_journal(tmp_path / "c.jsonl", [rec])
        counts = ingest_journal(store, path)
        assert counts["avf_rows"] == 2 and counts["ingested"] == 2

    def test_merged_shards_then_reingest_is_noop(self, store, tmp_path):
        """Satellite: merging node shards into the canonical journal and
        re-ingesting converges — merge dedups by task id, the store by
        canonical key, so no path double-counts."""
        canonical = tmp_path / "canonical.jsonl"
        write_journal(canonical, [point_record("grid/vgpr/matmul/c0")])
        shard_dir = tmp_path / "shards"
        shard_dir.mkdir()
        # one record already canonical, one genuinely new, duplicated
        # across both shards
        fresh = point_record(
            "grid/vgpr/matmul/c1", point=sweep_point(mode="4x1")
        )
        write_journal(
            shard_dir / "node-a.jsonl",
            [point_record("grid/vgpr/matmul/c0"), fresh],
        )
        write_journal(shard_dir / "node-b.jsonl", [fresh])
        ingest_journal(store, canonical)
        assert len(store.query()) == 1

        stats = merge_shards(canonical, shard_dir)
        assert stats["merged"] == 1 and stats["duplicates"] == 1
        counts = ingest_journal(store, canonical)
        assert counts["ingested"] == 1  # just the merged cell
        assert len(store.query()) == 2
        # the whole cycle again: a pure no-op
        assert merge_shards(canonical, shard_dir)["merged"] == 0
        assert ingest_journal(store, canonical)["ingested"] == 0


class TestMttf:
    def test_round_trip_and_idempotence(self, store):
        from types import SimpleNamespace

        rows = [
            SimpleNamespace(
                raw_fit_per_mbit=fit, mttf_smbf_01pct=1e5 / fit,
                mttf_smbf_5pct=2e3 / fit, mttf_tmbf_unbounded=9e9 / fit,
                mttf_tmbf_100yr=8e8 / fit,
            )
            for fit in (10.0, 100.0)
        ]
        assert store.put_mttf_rows(rows) == (2, 0)
        assert store.put_mttf_rows(rows) == (0, 2)
        stored = store.mttf_rows()
        assert [r["raw_fit_per_mbit"] for r in stored] == [10.0, 100.0]
        assert store.mttf_rows(cache_bytes=1) == []
