"""Plain-text rendering of a metrics snapshot and a span summary.

Shared by ``repro stats``, the experiment harness and anything else that
wants a human-readable account of where a run's effort went without
opening the trace in Perfetto.
"""

from __future__ import annotations

from typing import List

from .metrics import MetricsRegistry
from .progress import format_duration
from .trace import Tracer

__all__ = ["format_metrics", "format_spans", "format_report"]


def format_metrics(registry: MetricsRegistry) -> str:
    """Render a registry snapshot as aligned ``name value`` lines."""
    snap = registry.snapshot()
    lines: List[str] = []
    if snap["counters"]:
        lines.append("counters:")
        width = max(len(n) for n in snap["counters"])
        for name, value in snap["counters"].items():
            lines.append(f"  {name:<{width}}  {value}")
    if snap["gauges"]:
        lines.append("gauges:")
        width = max(len(n) for n in snap["gauges"])
        for name, value in snap["gauges"].items():
            lines.append(f"  {name:<{width}}  {value:g}")
    if snap["histograms"]:
        lines.append("histograms:")
        for name, h in snap["histograms"].items():
            mean = h["sum"] / h["count"] if h["count"] else 0.0
            lines.append(
                f"  {name}  count={h['count']} mean={mean:.4f} "
                f"sum={h['sum']:.4f}"
            )
    return "\n".join(lines) if lines else "(no metrics recorded)"


def _seconds(value: float) -> str:
    """Sub-minute timings keep millisecond resolution; longer ones read
    as human durations."""
    return f"{value:.3f}s" if value < 60 else format_duration(value)


def format_spans(tracer: Tracer) -> str:
    """Render the tracer's per-name timing summary as a table."""
    summary = tracer.summary()
    if not summary:
        return "(no spans recorded)"
    rows = sorted(summary.items(), key=lambda kv: -kv[1]["total"])
    width = max(len(name) for name, _ in rows)
    width = max(width, len("span"))
    lines = [
        f"{'span':<{width}}  {'count':>6}  {'total':>9}  {'mean':>9}  "
        f"{'max':>9}"
    ]
    for name, s in rows:
        lines.append(
            f"{name:<{width}}  {int(s['count']):>6}  "
            f"{_seconds(s['total']):>9}  {_seconds(s['mean']):>9}  "
            f"{_seconds(s['max']):>9}"
        )
    return "\n".join(lines)


def format_report(registry: MetricsRegistry, tracer: Tracer) -> str:
    """The full text report: span timings first, then metrics."""
    return (
        "== stage timings ==\n"
        + format_spans(tracer)
        + "\n\n== metrics ==\n"
        + format_metrics(registry)
    )
