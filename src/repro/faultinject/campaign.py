"""Fault-injection campaigns: the Table II ACE-interference study.

The paper validates its SDC MB-AVF model (Sec. VII-A) by checking how often
*ACE interference* occurs — a multi-bit fault whose bits interact at program
level such that the group's outcome differs from what the single-bit
ACEness of its members predicts (e.g. two flips cancelling in an XOR).

The study proceeds exactly as in the paper:

1. random single-bit injections into the VGPR identify SDC ACE bits
   (injections whose corrupted output differs from the golden output);
2. multi-bit fault groups are formed from each SDC ACE bit plus physically
   adjacent bits, and injected as one simultaneous flip;
3. a group exhibits ACE interference when the multi-bit injection is
   *masked* even though it contains a known SDC ACE bit.

The paper finds 2 interfering groups out of 1730 SDC ACE bits (~0.1%),
concluding single-bit ACE analysis is a sound basis for SDC MB-AVF.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..workloads.base import run_workload
from ..workloads.suite import OPENCL_SAMPLES, REGISTRY

__all__ = [
    "InjectionOutcome",
    "InjectionSpec",
    "BenchmarkCampaign",
    "run_campaign",
    "ace_interference_study",
]


class InjectionOutcome:
    """Outcome labels for a single injection run."""

    MASKED = "masked"      # output identical to golden
    SDC = "sdc"            # output silently corrupted
    CRASH = "crash"        # simulator trapped (bad address, runaway loop...)


@dataclass(frozen=True)
class InjectionSpec:
    """One fault: flip ``bits`` of (wavefront, register, lane) at ``cycle``."""

    wf: int
    reg: int
    lane: int
    bits: Tuple[int, ...]
    cycle: int

    @property
    def bitmask(self) -> int:
        mask = 0
        for b in self.bits:
            mask |= 1 << (b & 31)
        return mask


@dataclass
class BenchmarkCampaign:
    """Results of the injection study for one benchmark."""

    benchmark: str
    n_single_injections: int = 0
    single_outcomes: Dict[str, int] = field(default_factory=dict)
    sdc_ace_bits: List[InjectionSpec] = field(default_factory=list)
    #: per fault mode width: (groups injected, groups with ACE interference)
    multibit: Dict[int, Tuple[int, int]] = field(default_factory=dict)

    @property
    def n_sdc_ace_bits(self) -> int:
        return len(self.sdc_ace_bits)

    def interference_total(self) -> int:
        return sum(i for _, i in self.multibit.values())


class _Runner:
    """Executes one workload repeatedly with identical inputs."""

    def __init__(self, workload_cls, seed: int, n_cus: int) -> None:
        self.workload_cls = workload_cls
        self.seed = seed
        self.n_cus = n_cus
        golden_run = run_workload(workload_cls(seed=seed), n_cus=n_cus)
        self.golden = self._snapshot(golden_run)
        recs = golden_run.apu.records
        # Injection targeting: wavefront activity windows + register counts.
        self.windows: Dict[int, Tuple[int, int]] = {}
        for r in recs:
            lo, hi = self.windows.get(r.wf, (r.t, r.t))
            self.windows[r.wf] = (min(lo, r.t), max(hi, r.t))
        self.n_vregs = {
            w: p.n_vregs for w, p in golden_run.apu.wf_programs.items()
        }

    @staticmethod
    def _snapshot(run) -> bytes:
        return b"".join(
            run.memory.data[b : b + sz].tobytes() for b, sz in run.output_ranges
        )

    def random_spec(self, rng: np.random.Generator, n_bits: int = 1) -> InjectionSpec:
        wf = int(rng.choice(sorted(self.windows)))
        lo, hi = self.windows[wf]
        reg = int(rng.integers(0, self.n_vregs[wf]))
        lane = int(rng.integers(0, 16))
        start = int(rng.integers(0, 32))
        bits = tuple(min(start + k, 31) for k in range(n_bits))
        cycle = int(rng.integers(lo, hi + 1))
        return InjectionSpec(wf, reg, lane, tuple(sorted(set(bits))), cycle)

    def inject(self, spec: InjectionSpec) -> str:
        wl = self.workload_cls(seed=self.seed)
        try:
            from ..arch.gpu import Apu
            from ..arch.memory import GlobalMemory

            mem = GlobalMemory()
            wl.setup(mem)
            apu = Apu(n_cus=self.n_cus, memory=mem, max_cycles=2_000_000)
            apu.inject_fault(spec.wf, spec.reg, spec.lane, spec.bitmask, spec.cycle)
            wl.launch(apu)
            apu.finish()
        except Exception:
            return InjectionOutcome.CRASH
        got = b"".join(
            mem.data[b : b + sz].tobytes()
            for b, sz in (mem.buffer(n) for n in wl.outputs)
        )
        return InjectionOutcome.MASKED if got == self.golden else InjectionOutcome.SDC


def run_campaign(
    benchmark: str,
    *,
    n_single: int = 60,
    modes: Sequence[int] = (2, 3, 4),
    max_groups_per_mode: int = 20,
    seed: int = 0,
    n_cus: int = 2,
) -> BenchmarkCampaign:
    """The Table II procedure for one benchmark.

    ``n_single`` random single-bit injections find SDC ACE bits; each SDC ACE
    bit seeds one multi-bit group per mode width (the bit plus its physical
    neighbours), capped at ``max_groups_per_mode`` groups per mode.
    """
    if benchmark not in REGISTRY:
        raise KeyError(f"unknown benchmark {benchmark!r}")
    runner = _Runner(REGISTRY[benchmark], seed, n_cus)
    rng = np.random.default_rng(seed + 0xFA117)
    out = BenchmarkCampaign(benchmark, n_single_injections=n_single)
    for _ in range(n_single):
        spec = runner.random_spec(rng)
        verdict = runner.inject(spec)
        out.single_outcomes[verdict] = out.single_outcomes.get(verdict, 0) + 1
        if verdict == InjectionOutcome.SDC:
            out.sdc_ace_bits.append(spec)
    for m in modes:
        injected = 0
        interfering = 0
        for base in out.sdc_ace_bits[:max_groups_per_mode]:
            start = min(base.bits[0], 32 - m)
            group = InjectionSpec(
                base.wf, base.reg, base.lane,
                tuple(range(start, start + m)), base.cycle,
            )
            verdict = runner.inject(group)
            injected += 1
            # The group contains a proven SDC ACE bit; a masked outcome means
            # the extra flips cancelled the corruption: ACE interference.
            if verdict == InjectionOutcome.MASKED:
                interfering += 1
        out.multibit[m] = (injected, interfering)
    return out


def ace_interference_study(
    benchmarks: Optional[Sequence[str]] = None, **kwargs
) -> List[BenchmarkCampaign]:
    """Run the Table II study over the AMD OpenCL sample suite."""
    names = benchmarks if benchmarks is not None else OPENCL_SAMPLES
    return [run_campaign(b, **kwargs) for b in names]
