"""Validation: ACE-analysis AVF vs statistical fault injection.

The foundational sanity check of the whole methodology (Sec. III discusses
the Wang-et-al comparison): inject uniformly random (byte, bit, cycle)
faults into the memory data image and compare the observed SDC rate with
the ACE model's prediction (the region's ACE fraction).

Shape targets: ACE analysis is *conservative* — the observed rate must not
exceed the prediction beyond binomial noise — while remaining tight (same
order of magnitude), as the paper's Sec. VII-A study concludes for the SDC
model.
"""

import pytest

from repro.faultinject.validation import validate_memory_avf

BENCHMARKS = ("matmul", "transpose")
N_INJECTIONS = 120


def _run():
    return [
        validate_memory_avf(b, n_injections=N_INJECTIONS, n_cus=1)
        for b in BENCHMARKS
    ]


@pytest.mark.benchmark(group="validation")
def test_validation_injection_vs_ace(benchmark, report):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    lines = [
        f"{'benchmark':<12} {'model AVF':>10} {'observed':>9} {'stderr':>8} "
        f"{'sdc':>4} {'masked':>7} {'crash':>6}"
    ]
    for r in results:
        lines.append(
            f"{r.benchmark:<12} {r.model_avf:10.4f} {r.observed_rate:9.4f} "
            f"{r.stderr:8.4f} {r.sdc:4d} {r.masked:7d} {r.crash:6d}"
        )
    report("validation_injection_vs_ace", lines)

    for r in results:
        # Conservative: the observed rate does not exceed the model beyond
        # ~3 binomial standard errors.
        assert r.observed_rate <= r.model_avf + 3 * r.stderr + 0.02, r.benchmark
        # Tight: the model is within the right order of magnitude.
        assert r.observed_rate >= 0.25 * r.model_avf - 0.02, r.benchmark
        # The campaign actually exercised both outcomes.
        assert r.sdc > 0 and r.masked > 0, r.benchmark
