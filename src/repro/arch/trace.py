"""Dynamic trace records shared by the simulator and the AVF analyses.

The simulator is instrumented exactly like the paper's "event-tracking
phase" (Sec. VI-A): it records *when* potentially-ACEness-affecting events
happen, and a later analysis phase resolves them into per-byte lifetime
intervals.  Two kinds of records exist:

* :class:`InstrRecord` — one per executed *vector* instruction (vector ALU,
  compares, memory).  Scalar/control instructions don't touch tracked state
  and are treated as always-live, so they are not recorded.
* Cache events (:class:`FillEvent`, :class:`ReadEvent`, :class:`WriteEvent`,
  :class:`EvictEvent`) — emitted by each cache level with the global cycle.

The liveness pass (:mod:`repro.arch.liveness`) later annotates
:class:`InstrRecord` objects in place with per-source needed-bit masks.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = [
    "InstrRecord",
    "FillEvent",
    "ReadEvent",
    "WriteEvent",
    "EvictEvent",
]


class InstrRecord:
    """One executed vector instruction.

    Attributes filled by the simulator:

    ``uid``        globally-increasing dynamic instruction id
    ``t``          issue cycle
    ``wf``         wavefront id
    ``op``         opcode string
    ``dst``        destination operand (or None)
    ``srcs``       source operand tuple
    ``exec_mask``  active lanes (bool, 16)
    ``addrs``      per-lane byte addresses for memory ops (uint32, 16)
    ``nbytes``     access width for memory ops (1 or 4)
    ``acc_mask``   lanes that actually accessed memory (exec & predicate)
    ``vcc_snap``   VCC at issue (for cndmask and predicated ops)
    ``space``      'global' or 'lds' for memory ops

    Attributes filled by the liveness pass:

    ``live``         any lane of this instruction feeds program output
    ``src_needed``   per-source per-lane needed-bit masks (uint32, 16), or
                     None for non-register sources
    ``load_needed``  for loads: per-lane needed-bit masks of the loaded value
    ``mem_needed``   for stores: per-lane needed-bit masks of the stored value
    """

    __slots__ = (
        "uid", "t", "wf", "op", "dst", "srcs", "exec_mask", "addrs",
        "nbytes", "acc_mask", "vcc_snap", "space",
        "live", "src_needed", "load_needed", "mem_needed",
    )

    def __init__(
        self,
        uid: int,
        t: int,
        wf: int,
        op: str,
        dst,
        srcs,
        exec_mask: np.ndarray,
        addrs: Optional[np.ndarray] = None,
        nbytes: int = 4,
        acc_mask: Optional[np.ndarray] = None,
        vcc_snap: Optional[np.ndarray] = None,
        space: str = "global",
    ) -> None:
        self.uid = uid
        self.t = t
        self.wf = wf
        self.op = op
        self.dst = dst
        self.srcs = srcs
        self.exec_mask = exec_mask
        self.addrs = addrs
        self.nbytes = nbytes
        self.acc_mask = acc_mask
        self.vcc_snap = vcc_snap
        self.space = space
        self.live = True
        self.src_needed = None
        self.load_needed = None
        self.mem_needed = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<InstrRecord #{self.uid} t={self.t} wf={self.wf} {self.op}>"


class FillEvent:
    """A line was brought into (set, way) at cycle ``t``."""

    __slots__ = ("t", "set", "way", "line_addr", "fill_id")

    def __init__(self, t: int, set_: int, way: int, line_addr: int, fill_id: int):
        self.t = t
        self.set = set_
        self.way = way
        self.line_addr = line_addr
        self.fill_id = fill_id


class ReadEvent:
    """Bytes of a resident line were read out of the array at cycle ``t``.

    ``kind`` is one of:

    * ``'demand'`` — an architectural load hit; ``uid`` references the
      :class:`InstrRecord` whose per-lane addresses/liveness define which
      bytes were read and whether they mattered.
    * ``'fill'`` — the whole line was read to fill the next cache level up;
      ``link`` is the upper level's fill id, whose resolved byte liveness
      defines this read's liveness (hierarchical/transitive ACE analysis).
    * ``'writeback'`` — dirty bytes (``byte_mask``) were read out to be
      written to the next level down; liveness comes from whether the
      written-back values are later consumed (memory-level analysis).
    """

    __slots__ = ("t", "set", "way", "line_addr", "kind", "uid", "link", "byte_mask")

    def __init__(
        self,
        t: int,
        set_: int,
        way: int,
        line_addr: int,
        kind: str,
        uid: Optional[int] = None,
        link: Optional[int] = None,
        byte_mask: Optional[np.ndarray] = None,
    ):
        self.t = t
        self.set = set_
        self.way = way
        self.line_addr = line_addr
        self.kind = kind
        self.uid = uid
        self.link = link
        self.byte_mask = byte_mask


class WriteEvent:
    """Bytes of a resident line were overwritten by a store at cycle ``t``."""

    __slots__ = ("t", "set", "way", "line_addr", "uid")

    def __init__(self, t: int, set_: int, way: int, line_addr: int, uid: int):
        self.t = t
        self.set = set_
        self.way = way
        self.line_addr = line_addr
        self.uid = uid


class EvictEvent:
    """A line left (set, way) at cycle ``t`` (writeback already recorded)."""

    __slots__ = ("t", "set", "way", "line_addr")

    def __init__(self, t: int, set_: int, way: int, line_addr: int):
        self.t = t
        self.set = set_
        self.way = way
        self.line_addr = line_addr
