"""Configuration sweeps: measure a grid of AVFs in one call.

The experiments repeatedly measure (fault mode x protection scheme x
interleaving) grids; this utility packages that loop with caching-friendly
iteration order and a flat, easily-tabulated result form.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .analysis import AvfStudy
from .avf import MbAvfResult
from .faultmodes import FaultMode
from .layout import Interleaving
from .protection import ProtectionScheme

__all__ = ["SweepPoint", "sweep_cache_avf", "sweep_vgpr_avf", "tabulate"]


@dataclass(frozen=True)
class SweepPoint:
    """One measured configuration of a sweep."""

    structure: str
    mode: str
    scheme: str
    style: str
    factor: int
    due_avf: float
    sdc_avf: float
    true_due_avf: float
    false_due_avf: float

    @classmethod
    def from_result(
        cls, structure: str, style: Interleaving, factor: int, res: MbAvfResult
    ) -> "SweepPoint":
        return cls(
            structure=structure,
            mode=res.mode.name,
            scheme=res.scheme,
            style=style.value,
            factor=factor,
            due_avf=res.due_avf,
            sdc_avf=res.sdc_avf,
            true_due_avf=res.true_due_avf,
            false_due_avf=res.false_due_avf,
        )


def sweep_cache_avf(
    study: AvfStudy,
    level: str,
    *,
    modes: Iterable[FaultMode],
    schemes: Iterable[ProtectionScheme],
    layouts: Iterable[Tuple[Interleaving, int]] = ((Interleaving.NONE, 1),),
    domain_bytes: int = 4,
) -> List[SweepPoint]:
    """Measure every (mode, scheme, layout) combination on a cache level."""
    points = []
    for style, factor in layouts:
        for scheme in schemes:
            for mode in modes:
                res = study.cache_avf(
                    level, mode, scheme,
                    style=style, factor=factor, domain_bytes=domain_bytes,
                )
                points.append(SweepPoint.from_result(level, style, factor, res))
    return points


def sweep_vgpr_avf(
    study: AvfStudy,
    *,
    modes: Iterable[FaultMode],
    schemes: Iterable[ProtectionScheme],
    layouts: Iterable[Tuple[Interleaving, int]] = (
        (Interleaving.INTRA_THREAD, 1),
    ),
) -> List[SweepPoint]:
    """Measure every (mode, scheme, layout) combination on the VGPR."""
    points = []
    for style, factor in layouts:
        for scheme in schemes:
            for mode in modes:
                res = study.vgpr_avf(mode, scheme, style=style, factor=factor)
                points.append(SweepPoint.from_result("vgpr", style, factor, res))
    return points


def tabulate(
    points: Sequence[SweepPoint],
    *,
    value: str = "due_avf",
    rows: str = "mode",
    cols: str = "scheme",
) -> Tuple[List[str], List[str], Dict[Tuple[str, str], float]]:
    """Pivot a sweep into (row labels, column labels, cell values).

    ``rows``/``cols`` name SweepPoint fields; cells hold the chosen value
    (the last point wins if several share a cell).
    """
    row_labels: List[str] = []
    col_labels: List[str] = []
    cells: Dict[Tuple[str, str], float] = {}
    for p in points:
        r = str(getattr(p, rows))
        c = str(getattr(p, cols))
        if r not in row_labels:
            row_labels.append(r)
        if c not in col_labels:
            col_labels.append(c)
        cells[(r, c)] = getattr(p, value)
    return row_labels, col_labels, cells
