"""C605 fixture: handler-reachable helpers that lose the deadline."""

import urllib.request
from http.server import BaseHTTPRequestHandler


def fetch_status(url):
    return urllib.request.urlopen(url)  # C605(a): untimed, handler-reachable


def fetch_with_deadline(url, deadline_ms):
    return urllib.request.urlopen(url, None, deadline_ms / 1000.0)  # clean


def relay(url, deadline_ms):
    fetch_with_deadline(url)  # C605(b): deadline_ms in hand, not forwarded
    return fetch_with_deadline(url, deadline_ms)  # clean: forwarded


class StatusHandler(BaseHTTPRequestHandler):
    def do_GET(self):
        fetch_status("http://upstream/status")
        relay("http://upstream/health", 250)
