"""Tests for the shared experiment configuration and study cache."""


from repro.core import AvfStudy, FaultMode, Parity, SecDed
from repro.experiments import (
    SCALED_L1,
    SCALED_L2,
    StudyCache,
    build_study,
    scaled_apu_kwargs,
    sweep_benchmarks,
)


class TestScaledConfig:
    def test_capacities(self):
        assert SCALED_L1.capacity == 4 * 1024
        assert SCALED_L2.capacity == 32 * 1024

    def test_preserves_paper_ratio(self):
        # paper: 16KB L1 / 256KB L2 -> the scaled pair keeps L2 = 8x L1.
        assert SCALED_L2.capacity // SCALED_L1.capacity == 8

    def test_kwargs_plumb_through(self):
        study = build_study("vectoradd", n_cus=1)
        assert study.apu.memsys.l1s[0].config == SCALED_L1
        assert study.apu.memsys.l2.config == SCALED_L2

    def test_kwargs_are_fresh_dicts(self):
        a = scaled_apu_kwargs()
        a["l1_config"] = None
        assert scaled_apu_kwargs()["l1_config"] == SCALED_L1


class TestStudyCache:
    def test_returns_study(self):
        cache = StudyCache()
        study = cache("vectoradd")
        assert isinstance(study, AvfStudy)

    def test_memoises(self):
        cache = StudyCache()
        assert cache("vectoradd") is cache("vectoradd")

    def test_distinct_workloads_distinct_studies(self):
        cache = StudyCache()
        assert cache("vectoradd") is not cache("transpose")

    def test_cached_study_is_usable(self):
        cache = StudyCache()
        res = cache("vectoradd").cache_avf("l2", FaultMode.linear(1), Parity())
        assert 0 <= res.total_avf <= 1


class TestSweepBenchmarks:
    KWARGS = dict(
        modes=[FaultMode.linear(1), FaultMode.linear(2)],
        schemes=[Parity(), SecDed()],
    )

    def test_grid_covers_benchmarks(self):
        points, failed = sweep_benchmarks(["vectoradd"], "l2", **self.KWARGS)
        assert failed == {}
        assert len(points["vectoradd"]) == 4
        assert {p.structure for p in points["vectoradd"]} == {"l2"}

    def test_journaled_grid_resumes(self, tmp_path):
        journal = tmp_path / "grid.jsonl"
        first, _ = sweep_benchmarks(
            ["vectoradd"], "l2", journal=journal, **self.KWARGS
        )
        resumed, failed = sweep_benchmarks(
            ["vectoradd"], "l2", journal=journal, **self.KWARGS
        )
        assert failed == {}
        assert resumed == first
