"""Chaos suite: the campaign runtime fault-injected against itself."""
