"""Progress meter emission/ETA and the text report renderers."""

import io

from repro.obs import (
    MetricsRegistry,
    ProgressMeter,
    Tracer,
    format_duration,
    format_metrics,
    format_report,
    format_spans,
)
from repro.obs.metrics import NULL_REGISTRY
from repro.obs.trace import NULL_TRACER


class TestFormatDuration:
    def test_scales(self):
        assert format_duration(42.4) == "42s"
        assert format_duration(187) == "3m07s"
        assert format_duration(7500) == "2h05m"
        assert format_duration(-3) == "0s"


class TestProgressMeter:
    def test_interval_zero_emits_every_advance(self):
        out = io.StringIO()
        meter = ProgressMeter(4, "inject", interval=0.0, stream=out)
        meter.advance()
        meter.advance(2)
        lines = out.getvalue().splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("[inject] 1/4 (25.0%)")
        assert lines[1].startswith("[inject] 3/4 (75.0%)")
        assert "rate" in lines[0] and "eta" in lines[0]

    def test_long_interval_stays_silent_and_finish_respects_that(self):
        out = io.StringIO()
        meter = ProgressMeter(10, interval=3600.0, stream=out)
        meter.advance(10)
        meter.finish()
        assert out.getvalue() == ""

    def test_finish_emits_final_line_after_earlier_emission(self):
        out = io.StringIO()
        meter = ProgressMeter(2, interval=0.0, stream=out)
        meter.advance()
        meter.advance()
        meter.finish()
        final = out.getvalue().splitlines()[-1]
        assert final.startswith("2/2 (100.0%)")
        assert final.endswith("eta 0s")

    def test_snapshot_eta_unknown_at_zero_progress(self):
        meter = ProgressMeter(5, stream=io.StringIO())
        assert "eta ?" in meter.snapshot()

    def test_zero_total(self):
        out = io.StringIO()
        meter = ProgressMeter(0, interval=0.0, stream=out)
        meter.advance()
        assert "1/0 (0.0%)" in out.getvalue()


class TestReport:
    def test_format_metrics_lists_each_kind(self):
        reg = MetricsRegistry()
        reg.counter("sim.cycles").inc(100)
        reg.gauge("depth").set(2.5)
        reg.histogram("lat", bounds=(1.0,)).observe(0.5)
        text = format_metrics(reg)
        assert "counters:" in text
        assert "sim.cycles" in text and "100" in text
        assert "gauges:" in text and "2.5" in text
        assert "histograms:" in text and "count=1" in text

    def test_format_metrics_empty(self):
        assert format_metrics(NULL_REGISTRY) == "(no metrics recorded)"

    def test_format_spans_table(self):
        tr = Tracer()
        tr.add_event("enumerate", 2.0)
        tr.add_event("classify", 0.5)
        text = format_spans(tr)
        lines = text.splitlines()
        assert lines[0].startswith("span")
        # Sorted by total descending: enumerate first.
        assert lines[1].startswith("enumerate")
        assert lines[2].startswith("classify")

    def test_format_spans_empty(self):
        assert format_spans(NULL_TRACER) == "(no spans recorded)"

    def test_format_report_sections(self):
        text = format_report(NULL_REGISTRY, NULL_TRACER)
        assert "== stage timings ==" in text
        assert "== metrics ==" in text
