"""Registry semantics: counters, gauges, histograms, reset, no-op mode."""

import pytest

from repro import obs
from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from repro.obs.metrics import NULL_REGISTRY


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = MetricsRegistry().counter("x")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_create_or_get_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.counter("x") is not reg.counter("y")


class TestGauge:
    def test_last_write_wins(self):
        g = MetricsRegistry().gauge("depth")
        g.set(3.0)
        g.set(1.5)
        assert g.value == 1.5


class TestHistogram:
    def test_bucketing_inclusive_upper_edges(self):
        h = Histogram("lat", bounds=(1.0, 2.0, 4.0))
        for v in (0.5, 1.0, 1.5, 4.0, 100.0):
            h.observe(v)
        # 0.5 and 1.0 land in <=1.0; 1.5 in <=2.0; 4.0 in <=4.0; 100 overflows
        assert h.counts == [2, 1, 1, 1]
        assert h.count == 5
        assert h.sum == pytest.approx(107.0)
        assert h.mean == pytest.approx(107.0 / 5)

    def test_quantile_is_bucket_resolution(self):
        h = Histogram("lat", bounds=(1.0, 2.0, 4.0))
        for v in (0.5, 0.5, 3.0, 100.0):
            h.observe(v)
        assert h.quantile(0.0) == 1.0
        assert h.quantile(0.5) == 1.0
        assert h.quantile(0.75) == 4.0
        # Overflow bucket reports the last finite bound.
        assert h.quantile(1.0) == 4.0

    def test_quantile_empty_and_domain(self):
        h = Histogram("lat", bounds=(1.0,))
        assert h.quantile(0.5) == 0.0
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram("bad", bounds=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("bad", bounds=())

    def test_default_bounds(self):
        h = MetricsRegistry().histogram("lat")
        assert h.bounds == DEFAULT_LATENCY_BUCKETS


class TestRegistry:
    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(2)
        reg.gauge("b").set(7.0)
        reg.histogram("c", bounds=(1.0,)).observe(0.5)
        snap = reg.snapshot()
        assert snap["counters"] == {"a": 2}
        assert snap["gauges"] == {"b": 7.0}
        assert snap["histograms"]["c"]["counts"] == [1, 0]
        assert snap["histograms"]["c"]["count"] == 1

    def test_reset_zeroes_but_preserves_identity(self):
        reg = MetricsRegistry()
        c = reg.counter("a")
        c.inc(3)
        h = reg.histogram("b", bounds=(1.0,))
        h.observe(0.5)
        reg.reset()
        assert c.value == 0
        assert h.counts == [0, 0]
        assert h.sum == 0.0 and h.count == 0
        assert reg.counter("a") is c

    def test_truthiness(self):
        assert MetricsRegistry()
        assert not NullRegistry()


class TestNullRegistry:
    def test_instruments_are_shared_noops(self):
        reg = NullRegistry()
        c = reg.counter("a")
        assert c is reg.counter("b")
        c.inc(100)
        assert c.value == 0
        g = reg.gauge("x")
        g.set(9.0)
        assert g.value == 0.0
        h = reg.histogram("y")
        h.observe(3.0)
        assert h.count == 0
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}


class TestModuleState:
    def test_disabled_by_default(self):
        assert not obs.enabled()
        assert obs.get_metrics() is NULL_REGISTRY

    def test_enable_disable_roundtrip(self):
        reg, tracer = obs.enable()
        try:
            assert obs.enabled()
            assert obs.get_metrics() is reg
            assert obs.get_tracer() is tracer
        finally:
            obs.disable()
        assert not obs.enabled()

    def test_observe_exports_and_restores(self, tmp_path):
        import json

        mfile = tmp_path / "m.json"
        with obs.observe(metrics=str(mfile)) as (reg, _tracer):
            reg.counter("hits").inc(3)
        assert not obs.enabled()
        snap = json.loads(mfile.read_text())
        assert snap["counters"] == {"hits": 3}

    def test_observe_nests(self):
        with obs.observe() as (outer, _):
            with obs.observe() as (inner, _):
                assert obs.get_metrics() is inner
            assert obs.get_metrics() is outer
        assert not obs.enabled()


class TestPrometheusExport:
    def test_counters_and_gauges(self):
        reg = MetricsRegistry()
        reg.counter("avf.batch_cache_hits").inc(7)
        reg.gauge("campaign.workers").set(4)
        text = reg.to_prometheus()
        lines = text.splitlines()
        assert "# TYPE repro_avf_batch_cache_hits_total counter" in lines
        assert "repro_avf_batch_cache_hits_total 7" in lines
        assert "# TYPE repro_campaign_workers gauge" in lines
        assert "repro_campaign_workers 4" in lines
        assert text.endswith("\n")

    def test_histogram_cumulative_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("stage.seconds", bounds=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(v)
        lines = reg.to_prometheus().splitlines()
        assert 'repro_stage_seconds_bucket{le="0.1"} 1' in lines
        assert 'repro_stage_seconds_bucket{le="1"} 3' in lines
        assert 'repro_stage_seconds_bucket{le="10"} 4' in lines
        assert 'repro_stage_seconds_bucket{le="+Inf"} 5' in lines
        assert "repro_stage_seconds_count 5" in lines
        assert any(line.startswith("repro_stage_seconds_sum ") for line in lines)

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().to_prometheus() == ""

    def test_names_are_sanitized(self):
        reg = MetricsRegistry()
        reg.counter("weird-name.with:parts").inc()
        text = reg.to_prometheus()
        assert "repro_weird_name_with:parts_total 1" in text
