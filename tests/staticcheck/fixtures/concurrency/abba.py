"""C604 fixture: alpha->beta on one path, beta->alpha on the other."""

import threading


class Transfer:
    def __init__(self):
        self.alpha = threading.Lock()
        self.beta = threading.Lock()
        self.balance = 0

    def credit(self):
        with self.alpha:
            with self.beta:
                self.balance += 1

    def debit(self):
        with self.beta:
            with self.alpha:
                self.balance -= 1  # C604 reported at the later order

    def audit(self):
        with self.alpha:
            with self.beta:
                return self.balance  # clean: same order as credit
