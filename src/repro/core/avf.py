"""MB-AVF computation engine (Sec. IV, V and VII of the paper).

Given

* a physical layout (:class:`~repro.core.layout.SramArray`),
* per-byte classed ACE lifetimes (:class:`StructureLifetimes`),
* a fault mode (:class:`~repro.core.faultmodes.FaultMode`) and
* a protection scheme (:class:`~repro.core.protection.ProtectionScheme`),

the engine enumerates every fault group of the mode in the structure,
splits each group into overlapped regions (one per protection domain it
touches), classifies each region through the scheme's reaction, combines the
regions with the SDC/DUE precedence rules, and integrates the resulting
outcome intervals into DUE and SDC MB-AVF values (eq. 2, 4-7).

Groups whose classification is identical — same per-region faulty-bit counts
and same member lifetime content — are deduplicated, which makes the
enumeration of the ~1e5 groups of a real cache array cheap.  Enumeration is
fully vectorized: every mode geometry (contiguous Mx1 wordline faults and
2-D ``HxW`` rectangles alike) runs through one 2-axis
``sliding_window_view`` pass keyed by domain-relative ids, bucketed with a
single lexsort.

Cross-configuration reuse
-------------------------
A sweep evaluates dozens of (mode, scheme, interleaving) configurations
over the *same* lifetimes, so the expensive intermediates are cached where
they can be shared:

* canonical lifetime ids are computed once per :class:`StructureLifetimes`
  and cached on it,
* fault-group signatures are memoized per ``(array, mode, lifetimes)``,
* region ACE unions, region outcomes and combined signature outcomes are
  cached on the lifetimes' canonical table, keyed by scheme, so every
  config after the first reuses them.

:func:`compute_mb_avf_batch` exposes this directly: hand it a list of
:class:`AvfConfig` and it shares every cache across the whole batch; the
single-config :func:`compute_mb_avf` is a thin wrapper.  Cache traffic is
observable via the ``avf.batch_cache_hits`` counter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from ..obs import get_metrics, get_tracer
from .faultmodes import FaultMode
from .intervals import (
    AceClass,
    IntervalSet,
    Outcome,
    combine_outcomes,
    intersection_duration,
    sweep_max,
)
from .layout import SramArray
from .protection import ProtectionScheme, classify_region

__all__ = [
    "StructureLifetimes",
    "AvfConfig",
    "MbAvfResult",
    "compute_mb_avf",
    "compute_mb_avf_batch",
    "compute_sb_avf",
    "merge_results",
    "ace_locality",
    "intersection_duration",
]


@dataclass
class StructureLifetimes:
    """Per-byte classed ACE intervals for one hardware structure.

    ``byte_isets[i]`` holds the :class:`AceClass` intervals of tracked byte
    ``i`` (all 8 bits of a byte share one classification; bit-level liveness
    refinements are already folded in by the lifetime builder).  The analysis
    window is ``[start_cycle, end_cycle)``; intervals must lie inside it.

    The engine caches derived state (canonical lifetime ids, region
    classifications) on the instance, so ``byte_isets`` must not be mutated
    after the first AVF computation.
    """

    name: str
    byte_isets: Sequence[IntervalSet]
    start_cycle: int
    end_cycle: int
    #: engine cache, filled by _canonical_iset_ids on first AVF computation
    _canon_cache: Optional["_CanonicalIds"] = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def window_cycles(self) -> int:
        return self.end_cycle - self.start_cycle

    def sb_ace_fraction(self) -> float:
        """Plain single-bit AVF with no protection (fraction of ACE bit-cycles)."""
        total = sum(s.total(int(AceClass.ACE)) for s in self.byte_isets)
        return total / (len(self.byte_isets) * self.window_cycles)


@dataclass(frozen=True)
class AvfConfig:
    """One (fault mode, protection scheme) engine configuration.

    ``series_edges`` must be a tuple (the config is hashable so batches can
    deduplicate); :func:`compute_mb_avf` converts sequences for you.
    """

    mode: FaultMode
    scheme: ProtectionScheme
    due_preempts_sdc: bool = False
    miscorrect_corrupts: bool = False
    series_edges: Optional[Tuple[int, ...]] = None


@dataclass
class MbAvfResult:
    """Result of one MB-AVF computation for a (structure, mode, scheme)."""

    structure: str
    mode: FaultMode
    scheme: str
    n_groups: int
    window_cycles: int
    #: summed group-cycles per outcome class (indexed by ``Outcome``)
    outcome_cycles: Dict[Outcome, float] = field(default_factory=dict)
    #: optional time series: bucket edges and per-bucket outcome group-cycles
    series_edges: Optional[np.ndarray] = None
    series: Optional[np.ndarray] = None  # (buckets, 4)

    def _avf(self, *outcomes: Outcome) -> float:
        denom = self.n_groups * self.window_cycles
        if denom == 0:
            return 0.0
        return sum(self.outcome_cycles.get(o, 0.0) for o in outcomes) / denom

    @property
    def due_avf(self) -> float:
        """DUE MB-AVF: true + false detected-uncorrected error AVF."""
        return self._avf(Outcome.TRUE_DUE, Outcome.FALSE_DUE)

    @property
    def true_due_avf(self) -> float:
        return self._avf(Outcome.TRUE_DUE)

    @property
    def false_due_avf(self) -> float:
        return self._avf(Outcome.FALSE_DUE)

    @property
    def sdc_avf(self) -> float:
        """SDC MB-AVF: silent-data-corruption AVF."""
        return self._avf(Outcome.SDC)

    @property
    def total_avf(self) -> float:
        """Any-error AVF (SDC + DUE)."""
        return self._avf(Outcome.SDC, Outcome.TRUE_DUE, Outcome.FALSE_DUE)

    def series_avf(self, outcome: Outcome) -> np.ndarray:
        """Per-bucket AVF time series for one outcome class."""
        if self.series is None or self.series_edges is None:
            raise ValueError("result was computed without a time series")
        widths = np.diff(self.series_edges).astype(np.float64, copy=False)
        denom = widths * self.n_groups
        with np.errstate(divide="ignore", invalid="ignore"):
            out = np.where(denom > 0, self.series[:, int(outcome)] / denom, 0.0)
        return out

    def quantized_avf(
        self, *outcomes: Outcome, reduce: str = "max"
    ) -> float:
        """Quantized AVF: worst (or percentile) windowed AVF over the run.

        Whole-run AVFs average away vulnerability spikes; quantized AVF
        (Biswas et al., the paper's ref [9]) reports the AVF of the worst
        small window instead, which is what burst-error budgeting needs.
        Requires the result to have been computed with ``series_edges``.
        ``reduce`` is ``'max'`` or ``'p<NN>'`` (e.g. ``'p95'``).
        """
        if not outcomes:
            outcomes = (Outcome.TRUE_DUE, Outcome.FALSE_DUE, Outcome.SDC)
        total = sum(self.series_avf(o) for o in outcomes)
        if reduce == "max":
            return float(total.max())
        if reduce.startswith("p"):
            return float(np.percentile(total, float(reduce[1:])))
        raise ValueError(f"unknown reduction {reduce!r}")


class _CanonicalIds:
    """Canonical lifetime-id table plus the per-lifetimes engine caches.

    ``byte2iid`` maps byte ids to canonical interval-set ids (0 = the empty
    set); ``isets[iid]`` is the representative set.  The region/signature
    caches live here because their keys only make sense relative to this id
    table; batches and repeated single computations share them.
    """

    __slots__ = ("byte2iid", "isets", "region_ace", "region_out", "combined")

    def __init__(self, byte2iid: np.ndarray, isets: List[IntervalSet]) -> None:
        self.byte2iid = byte2iid
        self.isets = isets
        #: frozenset[iid] -> swept ACE union of the member lifetimes
        self.region_ace: Dict[FrozenSet[int], IntervalSet] = {}
        #: (scheme, miscorrect, n_bits, ids) -> classified region outcome
        self.region_out: Dict[Tuple, IntervalSet] = {}
        #: (scheme, miscorrect, due_preempts, sig) -> combined group outcome
        self.combined: Dict[Tuple, IntervalSet] = {}


def _canonical_iset_ids(lifetimes: StructureLifetimes) -> _CanonicalIds:
    """Canonical lifetime ids for ``lifetimes``, computed once and cached.

    Bytes whose interval sets are byte-for-byte equal share one id, so all
    downstream caches collapse identical lifetimes.  Deduplication is by
    object identity first (stacked structures reuse set objects), then by
    the sets' canonical array encoding.
    """
    canon = lifetimes._canon_cache
    if canon is not None:
        metrics = get_metrics()
        if metrics:
            metrics.counter("avf.batch_cache_hits").inc()
        return canon
    table: Dict[bytes, int] = {b"": 0}
    by_obj: Dict[int, int] = {}
    unique: List[IntervalSet] = [IntervalSet()]
    byte2iid = np.zeros(len(lifetimes.byte_isets), dtype=np.int32)
    for b, iset in enumerate(lifetimes.byte_isets):
        # id()-keyed interning is safe here: by_obj never outlives this
        # pass and every keyed object stays alive in lifetimes.byte_isets,
        # so ids cannot be recycled; ordering never depends on the ids.
        iid = by_obj.get(id(iset))  # staticcheck: ignore[D104]
        if iid is None:
            key = iset._key()
            iid = table.get(key)
            if iid is None:
                iid = len(unique)
                table[key] = iid
                unique.append(iset)
            by_obj[id(iset)] = iid  # staticcheck: ignore[D104]
        byte2iid[b] = iid
    canon = _CanonicalIds(byte2iid, unique)
    lifetimes._canon_cache = canon
    return canon


GroupSignature = Tuple[Tuple[int, FrozenSet[int]], ...]


def _unique_rows(a: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """(unique rows, counts) via lexsort — much faster than unique(axis=0)."""
    if not len(a):
        return a[:0], np.zeros(0, dtype=np.int64)
    order = np.lexsort(a.T[::-1])
    b = a[order]
    change = np.empty(len(b), dtype=bool)
    change[0] = True
    np.any(b[1:] != b[:-1], axis=1, out=change[1:])
    starts = np.where(change)[0]
    counts = np.diff(np.append(starts, len(b)))
    return b[starts], counts


def _sigs_from_keys(
    uniq: np.ndarray, counts: np.ndarray, k: int
) -> Dict[GroupSignature, int]:
    """Region signatures from deduplicated (relative domain, iid) keys."""
    sigs: Dict[GroupSignature, int] = {}
    for key, cnt in zip(uniq.tolist(), counts.tolist()):
        regions: Dict[int, List] = {}
        for pos in range(k):
            d = key[pos]
            iid = key[k + pos]
            ent = regions.get(d)
            if ent is None:
                regions[d] = ent = [0, set()]
            ent[0] += 1
            if iid:
                ent[1].add(iid)
        sig = tuple(sorted((n, frozenset(ids)) for n, ids in regions.values()))
        sigs[sig] = sigs.get(sig, 0) + cnt
    return sigs


def _enumerate_signatures(
    array: SramArray, byte2iid: np.ndarray, mode: FaultMode
) -> Dict[GroupSignature, int]:
    """Count fault groups per canonical (regions) signature.

    A signature is the multiset of the group's overlapped regions, each
    region being ``(n_faulty_bits, frozenset of member lifetime ids)``.  Two
    groups with equal signatures have identical AVF classification.

    All mode geometries share one vectorized path: every ``HxW`` placement
    becomes a row of a 2-axis :func:`sliding_window_view`, restricted to the
    mode's offsets, keyed by the vector of (domain id relative to the first
    offset's domain, lifetime id) per position — equal keys imply an
    identical domain-equality pattern and identical member lifetimes, hence
    an identical classification — and bucketed with one lexsort.  Windows
    whose members are all lifetime-empty classify to nothing and are dropped
    up front (they still count in the denominator via ``n_groups``).
    """
    from numpy.lib.stride_tricks import sliding_window_view

    h, w = mode.height, mode.width
    if h > array.rows or w > array.cols:
        return {}
    k = mode.n_bits
    iid_of = byte2iid[array.byte_of]
    dom_win = sliding_window_view(array.domain_of, (h, w))
    iid_win = sliding_window_view(iid_of, (h, w))
    n_win = dom_win.shape[0] * dom_win.shape[1]
    sel = np.fromiter(
        (r * w + c for r, c in mode.offsets), dtype=np.intp, count=k
    )
    iid_flat = iid_win.reshape(n_win, h * w)[:, sel]
    active = iid_flat.any(axis=1)
    if not active.any():
        return {}
    dom_flat = dom_win.reshape(n_win, h * w)[:, sel][active]
    keys = np.empty((len(dom_flat), 2 * k), dtype=np.int32)
    keys[:, :k] = dom_flat - dom_flat[:, :1]
    keys[:, k:] = iid_flat[active]
    uniq, counts = _unique_rows(keys)
    return _sigs_from_keys(uniq, counts, k)


def _signatures_for(
    array: SramArray,
    canon: _CanonicalIds,
    mode: FaultMode,
    lifetimes: StructureLifetimes,
) -> Dict[GroupSignature, int]:
    """Enumeration memo: signatures per (array, mode, canonical lifetimes)."""
    memo = array._sig_memo
    if memo is None:
        memo = array._sig_memo = {}
    key = (mode, canon)
    sigs = memo.get(key)
    metrics = get_metrics()
    if sigs is not None:
        if metrics:
            metrics.counter("avf.batch_cache_hits").inc()
        return sigs
    with get_tracer().span(
        "enumerate", structure=lifetimes.name, mode=mode.name
    ) as span:
        sigs = _enumerate_signatures(array, canon.byte2iid, mode)
        span.set(signatures=len(sigs))
    memo[key] = sigs
    return sigs


def compute_mb_avf_batch(
    array: SramArray,
    lifetimes: StructureLifetimes,
    configs: Sequence[AvfConfig],
) -> List[MbAvfResult]:
    """Compute MB-AVFs for many engine configurations in one pass.

    Canonical lifetime ids are resolved once; fault-group enumeration is
    memoized per mode; region ACE unions, region classifications and
    combined signature outcomes are shared across every config (keyed by
    scheme where they depend on it).  Use this instead of looping over
    :func:`compute_mb_avf` whenever several (mode, scheme) pairs are
    evaluated on the same structure — sweeps, design-space studies, the
    perf benches.
    """
    tracer = get_tracer()
    metrics = get_metrics()
    results: List[MbAvfResult] = []
    with tracer.span(
        "batch", structure=lifetimes.name, configs=len(configs)
    ):
        canon = _canonical_iset_ids(lifetimes)
        isets = canon.isets
        region_ace = canon.region_ace
        region_out = canon.region_out
        combined_cache = canon.combined
        for cfg in configs:
            mode, scheme = cfg.mode, cfg.scheme
            sigs = _signatures_for(array, canon, mode, lifetimes)
            n_groups = array.n_groups(mode.height, mode.width)
            if metrics:
                # The dedup hit-rate is 1 - signatures/groups: every group
                # beyond its signature's first is classified for free.
                metrics.counter("avf.computations").inc()
                metrics.counter("avf.groups_enumerated").inc(n_groups)
                metrics.counter("avf.unique_signatures").inc(len(sigs))

            out_key = (scheme, cfg.miscorrect_corrupts)
            comb_key = out_key + (cfg.due_preempts_sdc,)

            def region_outcome(n_bits: int, ids: FrozenSet[int]) -> IntervalSet:
                key = out_key + (n_bits, ids)
                cached = region_out.get(key)
                if cached is not None:
                    return cached
                ace = region_ace.get(ids)
                if ace is None:
                    ace = sweep_max([isets[i] for i in ids]) if ids else IntervalSet()
                    region_ace[ids] = ace
                out = classify_region(
                    scheme.react(n_bits),
                    ace,
                    miscorrect_corrupts=cfg.miscorrect_corrupts,
                )
                region_out[key] = out
                return out

            n_cached = len(region_out)
            with tracer.span(
                "classify", signatures=len(sigs), scheme=scheme.name
            ):
                combined_by_sig: Dict[GroupSignature, IntervalSet] = {}
                for sig in sigs:
                    cached = combined_cache.get(comb_key + (sig,))
                    if cached is None:
                        cached = combine_outcomes(
                            [region_outcome(n, ids) for n, ids in sig],
                            due_preempts_sdc=cfg.due_preempts_sdc,
                        )
                        combined_cache[comb_key + (sig,)] = cached
                    elif metrics:
                        metrics.counter("avf.batch_cache_hits").inc()
                    combined_by_sig[sig] = cached
            if metrics:
                metrics.counter("avf.regions_classified").inc(
                    len(region_out) - n_cached
                )

            outcome_cycles: Dict[Outcome, float] = {
                Outcome.FALSE_DUE: 0.0,
                Outcome.TRUE_DUE: 0.0,
                Outcome.SDC: 0.0,
            }
            edges = None
            series = None
            tmp = None
            if cfg.series_edges is not None:
                edges = np.asarray(cfg.series_edges, dtype=np.int64)
                series = np.zeros((len(edges) - 1, 4), dtype=np.float64)
                tmp = np.zeros_like(series)
            with tracer.span("integrate", signatures=len(sigs)):
                for sig, weight in sigs.items():
                    combined = combined_by_sig[sig]
                    if not combined:
                        continue
                    for s, e, c in combined:
                        outcome_cycles[Outcome(c)] += weight * (e - s)
                    if series is not None:
                        tmp.fill(0.0)
                        combined.bucket_accumulate(edges, tmp)
                        series += weight * tmp

            results.append(
                MbAvfResult(
                    structure=lifetimes.name,
                    mode=mode,
                    scheme=scheme.name,
                    n_groups=n_groups,
                    window_cycles=lifetimes.window_cycles,
                    outcome_cycles=outcome_cycles,
                    series_edges=edges,
                    series=series,
                )
            )
    return results


def compute_mb_avf(
    array: SramArray,
    lifetimes: StructureLifetimes,
    mode: FaultMode,
    scheme: ProtectionScheme,
    *,
    due_preempts_sdc: bool = False,
    miscorrect_corrupts: bool = False,
    series_edges: Optional[Sequence[int]] = None,
) -> MbAvfResult:
    """Compute the DUE and SDC MB-AVF of ``array`` for one fault mode.

    ``due_preempts_sdc`` enables the Sec. VIII simultaneous-read rule (a
    detected region fires before an undetected region's data can propagate,
    e.g. inter-thread interleaving within one GPU wavefront read).

    ``series_edges`` optionally requests an AVF-over-time series with the
    given bucket boundaries (used for the paper's phase plots, Fig. 5/8).

    Repeated calls on the same ``(array, lifetimes)`` reuse the cached
    enumeration and classifications; see :func:`compute_mb_avf_batch`.
    """
    cfg = AvfConfig(
        mode=mode,
        scheme=scheme,
        due_preempts_sdc=due_preempts_sdc,
        miscorrect_corrupts=miscorrect_corrupts,
        series_edges=tuple(series_edges) if series_edges is not None else None,
    )
    return compute_mb_avf_batch(array, lifetimes, [cfg])[0]


def compute_sb_avf(
    array: SramArray,
    lifetimes: StructureLifetimes,
    scheme: ProtectionScheme,
    *,
    series_edges: Optional[Sequence[int]] = None,
) -> MbAvfResult:
    """Single-bit AVF: MB-AVF of the degenerate 1x1 fault mode."""
    return compute_mb_avf(
        array, lifetimes, FaultMode.linear(1), scheme, series_edges=series_edges
    )


def merge_results(results: Sequence[MbAvfResult]) -> MbAvfResult:
    """Aggregate MB-AVF results over replicated structures.

    Used to combine the per-CU L1 caches, or the per-wavefront register
    files, into one structure-level AVF: outcome group-cycles and group
    counts add; all inputs must share the fault mode, scheme and analysis
    window.
    """
    if not results:
        raise ValueError("nothing to merge")
    first = results[0]
    outcome: Dict[Outcome, float] = {}
    n_groups = 0
    series = None
    for r in results:
        if r.mode != first.mode or r.scheme != first.scheme:
            raise ValueError("cannot merge results of different configurations")
        if r.window_cycles != first.window_cycles:
            raise ValueError("cannot merge results with different windows")
        n_groups += r.n_groups
        for o, cyc in r.outcome_cycles.items():
            outcome[o] = outcome.get(o, 0.0) + cyc
        if r.series is not None:
            series = r.series.copy() if series is None else series + r.series
    return MbAvfResult(
        structure=first.structure,
        mode=first.mode,
        scheme=first.scheme,
        n_groups=n_groups,
        window_cycles=first.window_cycles,
        outcome_cycles=outcome,
        series_edges=first.series_edges,
        series=series,
    )


def ace_locality(array: SramArray, lifetimes: StructureLifetimes) -> float:
    """ACE locality: tendency of physically adjacent bits to be ACE together.

    Defined as the aggregate Jaccard overlap of ACE time between horizontally
    adjacent bit pairs::

        locality = sum_pairs |ACE_i ∩ ACE_j| / sum_pairs |ACE_i ∪ ACE_j|

    1.0 means neighbours are always ACE at exactly the same cycles (the MB-AVF
    of a fault covering them collapses to the SB-AVF); 0.0 means ACE time
    never overlaps (MB-AVF approaches M times SB-AVF).  Structures with high
    ACE locality have lower MB-AVF (Sec. VI-B).

    All adjacent pairs of the whole array are bucketed with one lexsort
    (instead of one ``np.unique`` per row); the Jaccard terms are then
    evaluated once per distinct (lifetime id, lifetime id) pair.
    """
    canon = _canonical_iset_ids(lifetimes)
    isets = canon.isets
    iid_of = canon.byte2iid[array.byte_of]
    pairs = np.stack(
        [iid_of[:, :-1].ravel(), iid_of[:, 1:].ravel()], axis=1
    )
    uniq, counts = _unique_rows(pairs)
    inter = 0.0
    union = 0.0
    ace = int(AceClass.ACE)
    dur_cache: Dict[int, int] = {}

    def dur(i: int) -> int:
        d = dur_cache.get(i)
        if d is None:
            d = dur_cache[i] = isets[i].total_at_least(ace) if i else 0
        return d

    for (ia, ib), n in zip(uniq.tolist(), counts.tolist()):
        da = dur(ia)
        db = dur(ib)
        if da == 0 and db == 0:
            continue
        ov = intersection_duration(isets[ia], isets[ib], ace) if ia and ib else 0
        inter += n * ov
        union += n * (da + db - ov)
    return inter / union if union else 1.0
