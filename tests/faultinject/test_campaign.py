"""Tests for the fault-injection framework and ACE-interference campaign."""

import numpy as np
import pytest

from repro.arch import Apu, GlobalMemory, ProgramBuilder, imm, s, v
from repro.faultinject import InjectionOutcome, InjectionSpec, run_campaign
from repro.faultinject.campaign import _Runner
from repro.workloads import REGISTRY


class TestInjectionHook:
    def _copy_program(self):
        p = ProgramBuilder()
        p.shl(v(2), v(0), imm(2))
        p.iadd(v(3), v(2), s(2))
        p.load(v(4), v(3))
        p.iadd(v(5), v(2), s(3))
        p.store(v(4), v(5))
        return p.build()

    def _run(self, inject=None):
        mem = GlobalMemory()
        a = mem.alloc("a", 64)
        b = mem.alloc("b", 64)
        mem.view_u32("a")[:] = np.arange(16, dtype=np.uint32)
        apu = Apu(memory=mem, n_cus=1)
        if inject:
            apu.inject_fault(*inject)
        apu.launch(self._copy_program(), 16, [a, b])
        apu.finish()
        return mem.view_u32("b").copy()

    def test_no_injection_is_clean(self):
        assert (self._run() == np.arange(16)).all()

    def test_flip_in_live_register_corrupts_output(self):
        # Flip bit 0 of v0 (the tid register) in lane 3 before execution:
        # lane 3's addresses change, corrupting the copy.
        out = self._run(inject=(0, 0, 3, 1, 0))
        assert not (out == np.arange(16)).all()

    def test_flip_in_unused_register_is_masked(self):
        out = self._run(inject=(0, 9, 3, 1, 0))
        assert (out == np.arange(16)).all()

    def test_flip_after_completion_is_masked(self):
        out = self._run(inject=(0, 0, 3, 1, 10**6))
        assert (out == np.arange(16)).all()

    def test_flip_out_of_range_register_ignored(self):
        out = self._run(inject=(0, 500, 3, 1, 0))
        assert (out == np.arange(16)).all()


class TestInjectionSpec:
    def test_bitmask(self):
        spec = InjectionSpec(0, 1, 2, (0, 3), 5)
        assert spec.bitmask == 0b1001

    def test_bitmask_wraps_at_32(self):
        spec = InjectionSpec(0, 1, 2, (31,), 5)
        assert spec.bitmask == 1 << 31


class TestRunner:
    @pytest.fixture(scope="class")
    def runner(self):
        return _Runner(REGISTRY["transpose"], seed=0, n_cus=1)

    def test_golden_snapshot_nonempty(self, runner):
        assert len(runner.golden) == 32 * 32 * 4

    def test_masked_for_noop_injection(self, runner):
        # Register far beyond anything the kernel uses.
        spec = InjectionSpec(0, 200, 0, (0,), 0)
        assert runner.inject(spec) == InjectionOutcome.MASKED

    def test_deterministic_verdicts(self, runner):
        rng = np.random.default_rng(7)
        spec = runner.random_spec(rng)
        assert runner.inject(spec) == runner.inject(spec)

    def test_random_spec_in_bounds(self, runner):
        rng = np.random.default_rng(1)
        for _ in range(20):
            spec = runner.random_spec(rng, n_bits=3)
            assert 0 <= spec.lane < 16
            assert all(0 <= b < 32 for b in spec.bits)
            assert spec.wf in runner.windows


class TestCampaign:
    @pytest.fixture(scope="class")
    def campaign(self):
        return run_campaign(
            "transpose", n_single=24, max_groups_per_mode=6, seed=0, n_cus=1
        )

    def test_outcome_counts_sum(self, campaign):
        assert sum(campaign.single_outcomes.values()) == 24

    def test_finds_some_sdc_bits(self, campaign):
        assert campaign.n_sdc_ace_bits >= 1
        assert campaign.single_outcomes.get(InjectionOutcome.SDC, 0) == (
            campaign.n_sdc_ace_bits
        )

    def test_multibit_modes_run(self, campaign):
        assert set(campaign.multibit) == {2, 3, 4}
        for injected, interfering in campaign.multibit.values():
            assert 0 <= interfering <= injected

    def test_interference_is_rare(self, campaign):
        """The paper's Table II conclusion: ACE interference ~0.1%."""
        injected = sum(n for n, _ in campaign.multibit.values())
        interfering = campaign.interference_total()
        assert injected > 0
        assert interfering <= max(1, injected // 10)

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError):
            run_campaign("nope")
