"""C602 fixture: bare acquire leaks; the try/finally twin is clean."""

import threading

_lock = threading.Lock()


def bad_update(table, key, value):
    _lock.acquire()  # C602: release not structurally guaranteed
    table[key] = value
    _lock.release()


def good_update(table, key, value):
    _lock.acquire()
    try:
        table[key] = value
    finally:
        _lock.release()


def best_update(table, key, value):
    with _lock:
        table[key] = value
