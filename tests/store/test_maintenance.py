"""Store self-healing: verify, quarantine, rebuild, persistence chaos.

The store is a derived artifact — every row folded in from a durable
journal — so corruption must be an inconvenience, not data loss.
Acceptance (``service_chaos`` marker): a corrupted store rebuilt from
its journals serves byte-identical ``/api/query`` responses to a store
that was never corrupted, and seeded locked/full-disk chaos never
leaves a broken file behind.
"""

import http.client
import json
import os
import shutil
import sqlite3

import pytest

from repro import obs
from repro.report import ReportService
from repro.runtime.chaos import ChaosPolicy, ChaosSpec
from repro.store import (
    ResultStore,
    quarantine_store,
    rebuild_store,
    verify_store,
)
from repro.store.ingest import ingest_journal
from repro.store.schema import SCHEMA_VERSION

from .conftest import avf_row, point_record, sweep_point, write_journal

#: the service-chaos CI job runs two fixed seeds; assertions hold for any
SERVICE_SEED = int(os.environ.get("REPRO_SERVICE_SEED", "1"))


def corrupt(path):
    """Stomp garbage over a page in the middle of a sqlite file."""
    size = path.stat().st_size
    with open(path, "r+b") as fh:
        fh.seek(min(4096, size // 2))
        fh.write(b"\xde\xad\xbe\xef" * 256)


def sample_journal(tmp_path, n=3):
    """A campaign journal holding ``n`` distinct sweep results."""
    modes = ["2x1", "4x1", "2x2", "3x1", "8x1"]
    return write_journal(
        tmp_path / "campaign.jsonl",
        [
            point_record(
                f"t{i}", workload="matmul",
                point=sweep_point(mode=modes[i % len(modes)], factor=i + 1),
            )
            for i in range(n)
        ],
    )


class TestVerify:
    def test_healthy_store_is_ok(self, store, store_path):
        store.put_avf_rows([avf_row()])
        report = verify_store(store_path)
        assert report["ok"] is True
        assert report["problems"] == []
        assert report["checks"]["integrity"] == "ok"
        assert report["checks"]["schema_version"] == SCHEMA_VERSION
        assert report["checks"]["rows"]["avf_results"] == 1

    def test_quick_mode_is_ok_too(self, store, store_path):
        store.put_avf_rows([avf_row()])
        assert verify_store(store_path, quick=True)["ok"] is True

    def test_missing_file_is_not_ok(self, tmp_path):
        report = verify_store(tmp_path / "absent.sqlite")
        assert report["ok"] is False
        assert "does not exist" in report["problems"][0]

    def test_corrupted_file_is_not_ok_and_never_raises(
        self, store, store_path
    ):
        store.put_avf_rows([avf_row(seed=s) for s in range(50)])
        store.close()
        corrupt(store_path)
        report = verify_store(store_path)
        assert report["ok"] is False
        assert report["problems"]

    def test_verify_counters(self, store, store_path, tmp_path):
        with obs.observe() as (registry, _tracer):
            verify_store(store_path)
            verify_store(tmp_path / "absent.sqlite")
            counters = registry.snapshot()["counters"]
        assert counters["store.verify_runs"] == 2
        assert counters["store.verify_failures"] == 1


class TestQuarantine:
    def test_moves_file_to_numbered_slot(self, tmp_path):
        target = tmp_path / "r.sqlite"
        target.write_bytes(b"generation one")
        assert quarantine_store(target).endswith("r.sqlite.corrupt-1")
        assert not target.exists()
        target.write_bytes(b"generation two")
        assert quarantine_store(target).endswith("r.sqlite.corrupt-2")
        # evidence is renamed, never deleted
        assert (tmp_path / "r.sqlite.corrupt-1").read_bytes() == (
            b"generation one"
        )
        assert (tmp_path / "r.sqlite.corrupt-2").read_bytes() == (
            b"generation two"
        )

    def test_sidecars_travel_with_the_file(self, tmp_path):
        target = tmp_path / "r.sqlite"
        target.write_bytes(b"db")
        (tmp_path / "r.sqlite-wal").write_bytes(b"wal")
        (tmp_path / "r.sqlite-shm").write_bytes(b"shm")
        parked = quarantine_store(target)
        assert (tmp_path / "r.sqlite.corrupt-1-wal").exists()
        assert (tmp_path / "r.sqlite.corrupt-1-shm").exists()
        assert not (tmp_path / "r.sqlite-wal").exists()
        assert parked.endswith("r.sqlite.corrupt-1")


class TestRebuild:
    def test_rebuild_from_journal(self, tmp_path):
        journal = sample_journal(tmp_path)
        target = tmp_path / "r.sqlite"
        result = rebuild_store(target, [journal])
        assert result["quarantined"] is None  # nothing to park
        assert result["ingested"] == 3
        assert result["verify"]["ok"] is True
        with ResultStore(target) as store:
            assert len(store.query()) == 3

    def test_rebuild_quarantines_corrupt_file(self, tmp_path):
        journal = sample_journal(tmp_path)
        target = tmp_path / "r.sqlite"
        with ResultStore(target) as store:
            store.put_avf_rows([avf_row(seed=s) for s in range(50)])
        corrupt(target)
        result = rebuild_store(target, [journal])
        assert result["quarantined"].endswith(".corrupt-1")
        assert (tmp_path / "r.sqlite.corrupt-1").exists()
        assert result["verify"]["ok"] is True
        assert verify_store(target)["ok"] is True

    def test_rebuild_twice_converges(self, tmp_path):
        journal = sample_journal(tmp_path)
        target = tmp_path / "r.sqlite"
        rebuild_store(target, [journal])
        with ResultStore(target) as store:
            first = store.query().to_dicts()
        again = rebuild_store(target, [journal])
        assert again["quarantined"].endswith(".corrupt-1")
        with ResultStore(target) as store:
            assert store.query().to_dicts() == first

    def test_shard_dir_requires_a_canonical_journal(self, tmp_path):
        with pytest.raises(ValueError, match="canonical journal"):
            rebuild_store(
                tmp_path / "r.sqlite", (), shard_dir=tmp_path
            )

    def test_rebuild_counter(self, tmp_path):
        journal = sample_journal(tmp_path)
        with obs.observe() as (registry, _tracer):
            rebuild_store(tmp_path / "r.sqlite", [journal])
            counters = registry.snapshot()["counters"]
        assert counters["store.rebuilds"] == 1


def _get(service, path):
    conn = http.client.HTTPConnection(*service.address, timeout=10.0)
    try:
        conn.request("GET", path)
        resp = conn.getresponse()
        return resp.status, resp.read()
    finally:
        conn.close()


@pytest.mark.service_chaos
class TestRebuildConvergence:
    def test_rebuilt_store_serves_byte_identical_api_responses(
        self, tmp_path
    ):
        """Acceptance (b): corrupt the store, rebuild from journals, and
        the dashboard cannot tell the difference — raw ``/api/query``
        response bytes match a store that was never corrupted."""
        journal = sample_journal(tmp_path, n=5)
        control = tmp_path / "control.sqlite"
        with ResultStore(control) as store:
            ingest_journal(store, journal)

        victim = tmp_path / "victim.sqlite"
        shutil.copyfile(control, victim)
        corrupt(victim)
        assert verify_store(victim)["ok"] is False  # the damage is real

        result = rebuild_store(victim, [journal])
        assert result["verify"]["ok"] is True
        assert result["quarantined"].endswith(".corrupt-1")

        with ReportService(control) as a, ReportService(victim) as b:
            for path in ("/api/query", "/api/query?workload=matmul",
                         "/api/mttf"):
                status_a, body_a = _get(a, path)
                status_b, body_b = _get(b, path)
                assert (status_a, status_b) == (200, 200)
                assert body_a == body_b, path
        assert json.loads(body_a)["rows"] == []  # mttf: empty in both


@pytest.mark.service_chaos
class TestStoreChaos:
    def test_locked_chaos_exhausts_bounded_retries(self, tmp_path):
        """store_locked=1.0: the bounded retry gives up after its budget
        with the standard error — and the file is left intact."""
        path = tmp_path / "r.sqlite"
        ResultStore(path).close()  # healthy schema, no chaos
        policy = ChaosPolicy(
            ChaosSpec(store_locked=1.0), seed=SERVICE_SEED
        )
        with obs.observe() as (registry, _tracer):
            with ResultStore(path, chaos=policy) as store:
                with pytest.raises(sqlite3.OperationalError,
                                   match="locked"):
                    store.put_avf_rows([avf_row()])
            counters = registry.snapshot()["counters"]
        # 5 attempts: 4 retried (counted), the 5th raises
        assert counters["store.locked_retries"] == 4
        assert verify_store(path)["ok"] is True

    def test_locked_chaos_converges_under_retry(self, tmp_path):
        """store_locked=0.5 rolls fresh dice per attempt, so re-issued
        transactions converge — no row is ever lost to contention."""
        path = tmp_path / "r.sqlite"
        ResultStore(path).close()
        policy = ChaosPolicy(
            ChaosSpec(store_locked=0.5), seed=SERVICE_SEED
        )
        rows = [avf_row(seed=s) for s in range(6)]
        with ResultStore(path, chaos=policy) as store:
            for row in rows:
                for _ in range(20):  # each call is a fresh transaction
                    try:
                        store.put_avf_rows([row])
                        break
                    except sqlite3.OperationalError:
                        continue
                else:  # pragma: no cover - p < 2**-100
                    raise AssertionError("lock chaos never let us through")
        with ResultStore(path) as store:
            assert len(store.query()) == len(rows)
        assert verify_store(path)["ok"] is True

    def test_enospc_chaos_rolls_back_cleanly(self, tmp_path):
        """A full disk at commit aborts the transaction but corrupts
        nothing: clear the chaos (free the disk) and ingest converges."""
        path = tmp_path / "r.sqlite"
        ResultStore(path).close()
        policy = ChaosPolicy(
            ChaosSpec(store_enospc=1.0), seed=SERVICE_SEED
        )
        with ResultStore(path, chaos=policy) as store:
            with pytest.raises(OSError, match="space"):
                store.put_avf_rows([avf_row()])
        report = verify_store(path)
        assert report["ok"] is True
        assert report["checks"]["rows"]["avf_results"] == 0  # rolled back
        with ResultStore(path) as store:  # the disk has space again
            assert store.put_avf_rows([avf_row()]) == (1, 0)
        assert verify_store(path)["checks"]["rows"]["avf_results"] == 1
