"""The `repro lint` subcommand: same engine, wired through the main CLI."""

import json

from repro.cli import main

from .conftest import BASELINE, FIXTURES, SRC_REPRO


def test_repro_lint_fixtures_exit_1(capsys):
    assert main(["lint", str(FIXTURES)]) == 1
    out = capsys.readouterr().out
    assert "D101" in out and "F302" in out


def test_repro_lint_src_against_committed_baseline(capsys):
    # the exact invocation CI runs (acceptance: exits clean)
    assert main(
        ["lint", str(SRC_REPRO), "--baseline", str(BASELINE)]
    ) == 0
    assert "clean" in capsys.readouterr().out


def test_repro_lint_json_format(capsys):
    assert main(["lint", str(SRC_REPRO), "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["findings"] == []
    assert payload["files_scanned"] > 50


def test_repro_lint_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("D101", "D102", "D103", "D104", "N201", "N202", "N203",
                 "N204", "F301", "F302", "O401", "O402", "O403"):
        assert code in out


def test_repro_lint_metrics_export(tmp_path, capsys):
    # --metrics goes through obs.observe, capturing the lint counters
    metrics = tmp_path / "metrics.json"
    assert main(
        ["lint", str(FIXTURES), "--metrics", str(metrics)]
    ) == 1
    snapshot = json.loads(metrics.read_text())
    assert snapshot["counters"]["staticcheck.findings"] == 56
