"""Graceful SIGINT/SIGTERM drain: first signal lets in-flight work finish
and seals the journal, second signal aborts, and a drained campaign
resumes to completion without re-running anything."""

import os
import signal
import threading
import time

import pytest

from repro.runtime import (
    CampaignInterrupted,
    Executor,
    Journal,
    Task,
    TaskOutcome,
)

from ..runtime.stubs import dispatch


def _self_signal(payload):
    """Inline task that raises a signal against its own process, or runs
    the ok stub."""
    kind, arg = payload
    if kind == "signal":
        os.kill(os.getpid(), arg)
        return "signalled"
    return arg * 2


class TestInlineDrain:
    @pytest.mark.parametrize("sig", [signal.SIGINT, signal.SIGTERM])
    def test_first_signal_drains_seals_and_resumes(self, tmp_path, sig):
        jp = tmp_path / "j.jsonl"
        tasks = [
            Task("a", ("ok", 1)),
            Task("b", ("signal", sig)),
            Task("c", ("ok", 3)),
            Task("d", ("ok", 4)),
        ]
        with pytest.raises(CampaignInterrupted) as info:
            Executor(_self_signal, jobs=0, journal=jp).run(tasks)
        stop = info.value
        # The in-flight task ("b") finished and journaled before the stop.
        assert stop.completed == 2
        assert stop.total == 4
        assert stop.journal_path == jp
        assert set(Journal(jp).load()) == {"a", "b"}

        seen = []

        def resume_fn(payload):
            seen.append(payload)
            return payload[1] * 2

        results = Executor(resume_fn, jobs=0, journal=jp).run(tasks)
        assert len(results) == 4
        assert all(r.outcome == TaskOutcome.OK for r in results.values())
        # Only the two never-journaled tasks ran on resume.
        assert seen == [("ok", 3), ("ok", 4)]
        assert results["b"].value == "signalled"
        assert results["d"].value == 8

    def test_second_signal_aborts_immediately(self):
        def fn(payload):
            os.kill(os.getpid(), signal.SIGINT)
            os.kill(os.getpid(), signal.SIGINT)
            return 1

        with pytest.raises(KeyboardInterrupt) as info:
            Executor(fn, jobs=0).run([Task("x"), Task("y")])
        # A hard abort, not the graceful-drain subtype.
        assert not isinstance(info.value, CampaignInterrupted)

    def test_handlers_restored_after_run(self):
        before = (
            signal.getsignal(signal.SIGINT),
            signal.getsignal(signal.SIGTERM),
        )
        Executor(dispatch, jobs=0).run([Task("a", ("ok", 1))])
        after = (
            signal.getsignal(signal.SIGINT),
            signal.getsignal(signal.SIGTERM),
        )
        assert after == before

    def test_drain_signals_can_be_disabled(self):
        before = signal.getsignal(signal.SIGINT)

        def fn(payload):
            # With drain_signals=False the executor must not have swapped
            # the handler in.
            return signal.getsignal(signal.SIGINT) is before

        results = Executor(fn, jobs=0, drain_signals=False).run([Task("x")])
        assert results["x"].value is True


class TestProcessDrain:
    def test_sigterm_drains_in_flight_workers(self, tmp_path):
        """Process mode: on SIGTERM, busy workers finish their current
        task (journaled), nothing new dispatches, and the run raises
        CampaignInterrupted with an accurate completion count."""
        jp = tmp_path / "j.jsonl"
        tasks = [Task(f"s{i:02d}", ("sleep", 0.6)) for i in range(8)]

        def fire_when_first_record_lands():
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if jp.exists() and jp.stat().st_size > 0:
                    os.kill(os.getpid(), signal.SIGTERM)
                    return
                time.sleep(0.05)

        trigger = threading.Thread(
            target=fire_when_first_record_lands, daemon=True
        )
        trigger.start()
        with pytest.raises(CampaignInterrupted) as info:
            Executor(dispatch, jobs=2, journal=jp).run(tasks)
        trigger.join(5)
        stop = info.value
        assert 0 < stop.completed < len(tasks)
        # The journal is sealed: exactly the completed tasks, durably.
        journaled = set(Journal(jp).load())
        assert len(journaled) == stop.completed
        # Chaos-free resume finishes the campaign.
        resumed = Executor(dispatch, jobs=0, journal=jp).run(tasks)
        assert {k: r.value for k, r in resumed.items()} == {
            t.id: "slept" for t in tasks
        }
