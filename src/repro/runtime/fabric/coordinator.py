"""The fabric coordinator: lease-based task sharding over HTTP/JSON.

A :class:`FabricCoordinator` owns one stdlib ``ThreadingHTTPServer``
and the shared campaign state behind it; a :class:`FabricExecutor`
wraps it with the same ``run(tasks)`` contract as the local
:class:`~repro.runtime.executor.Executor`, so campaigns and sweeps can
swap a process pool for a worker fleet without changing shape.

Execution semantics (the distributed mirror of the executor's):

* **lease-based assignment** — a worker *pulls* a batch of tasks and
  holds a lease with a wall-clock deadline; heartbeats renew it (capped
  by the per-task timeout, so a wedged simulation cannot keep its lease
  alive forever).  A lease that expires — node death, partition,
  heartbeat blackout — re-queues its task for another node: worker-node
  loss is a routine event, not a failure.
* **at-least-once, idempotent** — a re-dispatched task may eventually
  be reported by two nodes; results are keyed by the journal record
  identity (the task id) and the first final result wins, duplicates
  are counted and dropped.
* **replicated journal** — nodes append every record to a local CRC'd
  shard before reporting it; the coordinator appends accepted records
  to the canonical journal (the commit), and merges shard files at the
  end of a round and on drain so records the coordinator never saw are
  still resumable (:mod:`repro.runtime.fabric.merge`).
* **graceful degradation** — tasks whose leases keep expiring, and all
  tasks when no worker has been heard from within a grace period, are
  *demoted* to local execution in the driver; a dead or partitioned
  fleet slows the campaign down to single-host speed instead of
  failing it.

Journaling and resume go through the exact machinery the local
executor uses (:func:`~repro.runtime.executor.load_journaled_results`,
:class:`~repro.runtime.journal.Journal`), so a journal written by a
fabric campaign resumes under a local one and vice versa.
"""

# staticcheck: scope=executor
# (FabricExecutor owns the SIGINT/SIGTERM drain handlers here exactly
# as runtime.Executor does, and F303 holds it to timed network calls.)

from __future__ import annotations

import signal
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from ...obs import ProgressMeter, get_metrics, get_tracer
from ..errors import (
    CampaignInterrupted,
    ExecutorError,
    JournalWriteError,
    TaskOutcome,
    classify_exception,
)
from ..executor import Task, TaskResult, load_journaled_results
from ..guard import GuardConfig, GuardRejection, ServiceGuard
from ..journal import Journal, PathLike
from ..retry import RetryPolicy
from . import tasks as task_registry
from .merge import merge_shards
from .protocol import JobSpec, RpcError, decode_request, encode_error, \
    encode_response

__all__ = ["FabricCoordinator", "FabricExecutor"]

_INFINITY = float("inf")


@dataclass
class _TaskState:
    """Coordinator-side state of one task in the current round."""

    task: Task
    payload_json: Any
    dispatches: int = 0           # remote lease grants so far
    status: str = "queued"        # queued | leased | demoted | done
    node: Optional[str] = None
    lease_deadline: float = _INFINITY
    lease_started: float = 0.0
    first_dispatch: float = 0.0


@dataclass
class _Round:
    """One ``FabricExecutor.run`` call's worth of shared state."""

    job: JobSpec
    states: Dict[str, _TaskState]
    queue: deque = field(default_factory=deque)
    demoted: deque = field(default_factory=deque)
    #: accepted (node, record, spans) reports awaiting driver finalize
    inbox: List[Tuple[str, dict, list]] = field(default_factory=list)
    #: ids accepted into the inbox or finalized (duplicate guard)
    settled: set = field(default_factory=set)
    draining: bool = False


class _RpcHandler(BaseHTTPRequestHandler):
    """One POST endpoint (``/rpc``); everything else is a 404.

    Every request passes through the coordinator's
    :class:`~repro.runtime.guard.ServiceGuard`: admission control and
    rate limiting run *before* the body is read (a shed request costs
    one queue probe, not a parse), Content-Length is validated before
    any bytes move (413/400), and an envelope whose ``deadline_ms``
    budget was burned waiting in the queue is rejected with 504 instead
    of executed for a client that already gave up.
    """

    # a worker that stalls mid-request must not pin a server thread
    # (overridden from GuardConfig.socket_timeout by start())
    timeout = 30.0
    protocol_version = "HTTP/1.1"
    coordinator: "FabricCoordinator"

    def do_POST(self) -> None:  # noqa: N802 (stdlib handler naming)
        if self.path != "/rpc":
            self._reply(404, encode_error("unknown path"))
            return
        guard = self.coordinator.guard
        arrival = time.monotonic()
        try:
            with guard.admit():
                env = decode_request(
                    guard.read_body(self.rfile, self.headers)
                )
                guard.check_deadline(env.get("deadline_ms"), arrival)
                result = self.coordinator.handle(env)
        except GuardRejection as rej:
            # The body may be unread: close the connection so HTTP/1.1
            # keep-alive framing cannot desynchronize.
            self._reply(
                rej.status, encode_error(rej.reason),
                retry_after=rej.retry_after, close=True,
            )
        except RpcError as exc:
            self._reply(400, encode_error(str(exc)))
        except Exception as exc:  # server must answer, never hang a node
            self._reply(500, encode_error(f"{type(exc).__name__}: {exc}"))
        else:
            self._reply(200, encode_response(result))

    def _reply(
        self,
        status: int,
        body: bytes,
        *,
        retry_after: Optional[float] = None,
        close: bool = False,
    ) -> None:
        try:
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            if retry_after is not None:
                self.send_header("Retry-After", f"{retry_after:g}")
            if close:
                self.send_header("Connection", "close")
                self.close_connection = True
            self.end_headers()
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionError, OSError):
            pass  # caller vanished mid-reply; its retry will re-ask

    def log_message(self, fmt: str, *args: Any) -> None:  # silence stderr
        pass


class FabricCoordinator:
    """Shared fabric state plus the HTTP server worker nodes talk to."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        lease_ttl: float = 4.0,
        lease_batch: int = 2,
        poll_interval: float = 0.15,
        shard_dir: Optional[PathLike] = None,
        guard: Optional[GuardConfig] = None,
    ) -> None:
        if lease_ttl <= 0:
            raise ValueError("lease_ttl must be > 0 seconds")
        if lease_batch < 1:
            raise ValueError("lease_batch must be >= 1")
        self.host = host
        self.port = port
        self.lease_ttl = lease_ttl
        self.lease_batch = lease_batch
        self.poll_interval = poll_interval
        #: overload protection for the RPC surface (admission control,
        #: rate limiting, body caps, deadline enforcement)
        self.guard = ServiceGuard("fabric", guard or GuardConfig())
        #: directory of node shard journals to merge on commit (when the
        #: coordinator can see them, e.g. localhost or a shared mount)
        self.shard_dir = shard_dir
        self.nodes: Dict[str, float] = {}  # node id -> last contact (mono)
        self._lock = threading.Condition()
        self._round: Optional[_Round] = None
        self._timeout: Optional[float] = None
        self._shutdown_workers = False
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._last_contact: Optional[float] = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> Tuple[str, int]:
        """Bind and serve in a background thread; returns (host, port)."""
        if self._server is not None:
            return self.address
        handler = type(
            "_BoundRpcHandler", (_RpcHandler,),
            {
                "coordinator": self,
                "timeout": self.guard.config.socket_timeout,
            },
        )
        self._server = ThreadingHTTPServer((self.host, self.port), handler)
        self._server.daemon_threads = True
        self.port = self._server.server_address[1]
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="fabric-coordinator",
            daemon=True,
        )
        self._thread.start()
        return self.address

    def stop(self) -> None:
        """Tell workers to exit on their next poll, then stop serving."""
        with self._lock:
            self._shutdown_workers = True
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
            self._thread = None

    @property
    def address(self) -> Tuple[str, int]:
        return (self.host, self.port)

    @property
    def endpoint(self) -> str:
        return f"{self.host}:{self.port}"

    def __enter__(self) -> "FabricCoordinator":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -- round management (driver side) --------------------------------------

    def begin_round(
        self,
        job: JobSpec,
        pending: List[Task],
        *,
        timeout: Optional[float] = None,
    ) -> _Round:
        encode = task_registry.resolve(job).encode
        states = {
            t.id: _TaskState(task=t, payload_json=encode(t.payload))
            for t in pending
        }
        rnd = _Round(job=job, states=states)
        with self._lock:
            if self._round is not None:
                raise ExecutorError("a fabric round is already in flight")
            # fill the queue under the lock: handler threads touch it the
            # moment the round is published
            rnd.queue.extend(t.id for t in pending)
            self._round = rnd
            self._timeout = timeout
        return rnd

    def end_round(self) -> None:
        with self._lock:
            self._round = None
            self._timeout = None

    def seconds_since_contact(self) -> Optional[float]:
        """Seconds since any worker RPC, or None if none ever arrived."""
        with self._lock:
            if self._last_contact is None:
                return None
            return time.monotonic() - self._last_contact

    def sweep_leases(self, retry: RetryPolicy, local_fallback: bool) -> None:
        """Expire overdue leases: re-queue, demote, or fail their tasks.

        A lease expiry is the fabric's ``worker_died``: the node may be
        dead, partitioned, or blacked out.  The retry policy governs
        further *remote* dispatches; once spent, the task is demoted to
        local execution (graceful degradation) or — with local fallback
        disabled — finalized as ``worker_died`` by the driver.
        """
        now = time.monotonic()
        with self._lock:
            rnd = self._round
            if rnd is None:
                return
            for state in rnd.states.values():
                if state.status != "leased" or now < state.lease_deadline:
                    continue
                get_metrics().counter("fabric.lease_expired").inc()
                get_tracer().add_event(
                    "lease_expired", 0.0,
                    id=state.task.id, node=state.node,
                    dispatch=state.dispatches,
                )
                state.node = None
                state.lease_deadline = _INFINITY
                if not rnd.draining and retry.should_retry(
                    TaskOutcome.WORKER_DIED, state.dispatches
                ):
                    state.status = "queued"
                    rnd.queue.append(state.task.id)
                else:
                    state.status = "demoted"
                    rnd.demoted.append(state.task.id)
                    if local_fallback:
                        get_metrics().counter("fabric.demoted_local").inc()
            self._lock.notify_all()

    def demote_idle_queue(self) -> Optional[str]:
        """Move one queued task to the demoted (local) queue, if any."""
        with self._lock:
            rnd = self._round
            if rnd is None or not rnd.queue:
                return None
            task_id = rnd.queue.popleft()
            state = rnd.states[task_id]
            state.status = "demoted"
            rnd.demoted.append(task_id)
            get_metrics().counter("fabric.demoted_local").inc()
            return task_id

    def take_inbox(self) -> List[Tuple[str, dict, list]]:
        with self._lock:
            rnd = self._round
            if rnd is None or not rnd.inbox:
                return []
            batch, rnd.inbox = rnd.inbox, []
            return batch

    def take_demoted(self) -> Optional[_TaskState]:
        with self._lock:
            rnd = self._round
            if rnd is None or not rnd.demoted:
                return None
            return rnd.states[rnd.demoted.popleft()]

    def requeue(self, task_id: str) -> None:
        """Return an un-executed demoted task to the remote queue."""
        with self._lock:
            rnd = self._round
            if rnd is None:
                return
            state = rnd.states[task_id]
            if state.status == "demoted":
                state.status = "queued"
                rnd.queue.append(task_id)

    def mark_done(self, task_id: str) -> None:
        with self._lock:
            rnd = self._round
            if rnd is None:
                return
            rnd.states[task_id].status = "done"
            rnd.settled.add(task_id)
            self._lock.notify_all()

    def set_draining(self) -> None:
        with self._lock:
            if self._round is not None:
                self._round.draining = True

    def outstanding_leases(self) -> int:
        with self._lock:
            rnd = self._round
            if rnd is None:
                return 0
            return sum(
                1 for s in rnd.states.values() if s.status == "leased"
            )

    def wait(self, timeout: float) -> None:
        with self._lock:
            self._lock.wait(timeout)

    # -- RPC handling (server threads) ---------------------------------------

    def handle(self, env: Dict[str, Any]) -> Dict[str, Any]:
        method = env["method"]
        node = env["node"]
        params = env["params"]
        with self._lock:
            self.nodes[node] = time.monotonic()
            self._last_contact = self.nodes[node]
            if method == "register":
                get_metrics().counter("fabric.nodes_registered").inc()
                return {
                    "lease_ttl": self.lease_ttl,
                    "poll_interval": self.poll_interval,
                }
            if method == "lease":
                return self._handle_lease(node, params)
            if method == "heartbeat":
                return self._handle_heartbeat(node, params)
            if method == "report":
                return self._handle_report(node, params)
            if method == "goodbye":
                return self._handle_goodbye(node)
        raise RpcError(f"unhandled method {method!r}")  # pragma: no cover

    def _handle_lease(self, node: str, params: Dict) -> Dict[str, Any]:
        if self._shutdown_workers:
            return {"shutdown": True}
        rnd = self._round
        if rnd is None or rnd.draining or not rnd.queue:
            return {"idle": True, "poll": self.poll_interval}
        want = max(1, int(params.get("max_tasks", 1)))
        now = time.monotonic()
        granted = []
        while rnd.queue and len(granted) < min(want, self.lease_batch):
            task_id = rnd.queue.popleft()
            state = rnd.states[task_id]
            state.status = "leased"
            state.node = node
            state.dispatches += 1
            state.lease_started = now
            if state.dispatches == 1:
                state.first_dispatch = now
            state.lease_deadline = now + self.lease_ttl
            granted.append(
                {
                    "id": task_id,
                    "payload": state.payload_json,
                    "meta": state.task.meta,
                    "attempt": state.dispatches,
                }
            )
        get_metrics().counter("fabric.leases").inc(len(granted))
        return {
            "job": rnd.job.to_dict(),
            "tasks": granted,
            "lease_ttl": self.lease_ttl,
        }

    def _handle_heartbeat(self, node: str, params: Dict) -> Dict[str, Any]:
        rnd = self._round
        if rnd is None:
            return {"ok": True}
        now = time.monotonic()
        renewed = 0
        for task_id in params.get("tasks", ()):
            state = rnd.states.get(task_id)
            if state is None or state.status != "leased":
                continue
            if state.node != node:
                continue  # lease moved on; the late node's report will dup
            deadline = now + self.lease_ttl
            if self._timeout is not None:
                # A task past its wall-clock budget stops renewing: the
                # lease expires and the work is re-dispatched or demoted
                # even though the wedged node still heartbeats.
                deadline = min(
                    deadline,
                    state.lease_started + self._timeout + self.lease_ttl,
                )
            state.lease_deadline = max(state.lease_deadline, deadline)
            renewed += 1
        return {"ok": True, "renewed": renewed}

    def _handle_report(self, node: str, params: Dict) -> Dict[str, Any]:
        rnd = self._round
        acked = []
        for entry in params.get("records", ()):
            rec = entry.get("record") if isinstance(entry, dict) else None
            if not isinstance(rec, dict) or not isinstance(
                rec.get("task"), str
            ):
                raise RpcError(f"malformed report entry: {entry!r}")
            task_id = rec["task"]
            # Always ack: the worker may be re-reporting after a
            # partition, for a round that has since completed.
            acked.append(task_id)
            if rnd is None:
                continue
            state = rnd.states.get(task_id)
            if state is None:
                continue  # not this round's task (stale worker)
            if task_id in rnd.settled:
                get_metrics().counter("fabric.duplicate_results").inc()
                continue
            spans = entry.get("spans") or []
            rnd.settled.add(task_id)
            state.status = "done"
            state.node = None
            state.lease_deadline = _INFINITY
            rnd.inbox.append((node, rec, spans))
        get_metrics().counter("fabric.reports").inc()
        self._lock.notify_all()
        return {"acked": acked}

    def _handle_goodbye(self, node: str) -> Dict[str, Any]:
        rnd = self._round
        released = 0
        if rnd is not None:
            for state in rnd.states.values():
                if state.status == "leased" and state.node == node:
                    state.status = "queued"
                    state.node = None
                    state.lease_deadline = _INFINITY
                    rnd.queue.append(state.task.id)
                    released += 1
        self.nodes.pop(node, None)
        self._lock.notify_all()
        return {"released": released}


class FabricExecutor:
    """Executor-shaped driver running tasks through a fabric coordinator.

    Mirrors :class:`~repro.runtime.executor.Executor.run`'s contract:
    journaled tasks are skipped, every final result is durably appended
    to the canonical journal, a SIGINT/SIGTERM drain seals the journal
    and raises :class:`CampaignInterrupted`, and failures degrade to
    labelled results instead of exceptions.  Remote attempts are
    accounted per dispatch; tasks the fleet cannot finish run locally.
    """

    def __init__(
        self,
        coordinator: FabricCoordinator,
        job: JobSpec,
        *,
        local_fn: Optional[Callable[[Any], Any]] = None,
        journal: Optional[Union[Journal, PathLike]] = None,
        retry: Optional[RetryPolicy] = None,
        timeout: Optional[float] = None,
        local_fallback: bool = True,
        worker_grace: float = 1.5,
        progress: Union[bool, str] = False,
        drain_signals: bool = True,
        stop_after: Optional[int] = None,
        store: Optional[Any] = None,
    ) -> None:
        self.coordinator = coordinator
        self.job = job
        #: optional results-store sink (a ``repro.store.ResultStore`` or a
        #: path to one): after shard commit the canonical journal is
        #: ingested, so every fabric round lands in the store the moment
        #: it finalizes.  Requires a journal — without one there is no
        #: durable record to fold in, and the sink is skipped.
        self.store = store
        #: driver-side task function for demoted (local-fallback) tasks,
        #: taking the *original* payload; when None, the job's entrypoint
        #: is built locally and fed the JSON payload instead
        self.local_fn = local_fn
        self.journal = (
            journal if isinstance(journal, Journal) or journal is None
            else Journal(journal)
        )
        self.retry = retry or RetryPolicy()
        self.timeout = timeout
        self.local_fallback = local_fallback
        #: demote queued work to local execution after this long without
        #: hearing from any worker node
        self.worker_grace = worker_grace
        self.progress = progress
        self.drain_signals = drain_signals
        #: test hook: drain after this many newly finalized results
        self.stop_after = stop_after
        self._local_fn: Optional[Callable[[Any], Any]] = None
        self._local_fn_is_json = False
        self._draining = False
        self._meter: Optional[ProgressMeter] = None

    # -- public API ----------------------------------------------------------

    def run(
        self,
        tasks: Any,
        fn: Optional[Callable[[Any], Any]] = None,
    ) -> Dict[str, TaskResult]:
        """Execute ``tasks`` across the fleet; see class docstring."""
        tasks = list(tasks)
        ids = [t.id for t in tasks]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate task ids")
        fn = fn or self.local_fn
        self._local_fn = fn
        self._local_fn_is_json = fn is None
        results, pending = load_journaled_results(self.journal, tasks)
        if not pending:
            return results
        self.coordinator.start()
        rnd = self.coordinator.begin_round(
            self.job, pending, timeout=self.timeout
        )
        self._draining = False
        finalized_now = 0
        saved = self._install_signal_handlers()
        self._meter = None
        if self.progress:
            label = (
                self.progress if isinstance(self.progress, str) else "tasks"
            )
            self._meter = ProgressMeter(len(pending), label)
        with get_tracer().span(
            "fabric", job=self.job.kind, tasks=len(pending),
        ):
            try:
                while len(results) < len(tasks):
                    if self._draining:
                        self._drain(rnd, results)
                        break
                    self.coordinator.sweep_leases(
                        self.retry, self.local_fallback
                    )
                    for node, rec, spans in self.coordinator.take_inbox():
                        self._absorb(node, rec, spans, results)
                        finalized_now += 1
                    state = self.coordinator.take_demoted()
                    if state is not None:
                        if self.local_fallback:
                            self._run_local(state, results)
                            finalized_now += 1
                        else:
                            self._finalize(
                                state.task,
                                TaskResult(
                                    state.task.id, TaskOutcome.WORKER_DIED,
                                    None,
                                    "lease expired and local fallback is "
                                    "disabled",
                                    attempts=max(1, state.dispatches),
                                ),
                                results,
                            )
                            finalized_now += 1
                        continue
                    if (
                        self.stop_after is not None
                        and finalized_now >= self.stop_after
                        and len(results) < len(tasks)
                    ):
                        self._draining = True
                        continue
                    self._maybe_demote_for_dead_fleet()
                    if len(results) < len(tasks):
                        self.coordinator.wait(0.05)
            finally:
                self.coordinator.end_round()
                self._restore_signal_handlers(saved)
                if self._meter is not None:
                    self._meter.finish()
                    self._meter = None
        if self._draining and len(results) < len(tasks):
            self._commit_shards()
            self._ingest_store()
            if self.journal is not None:
                self.journal.close()
            get_metrics().counter("runtime.drains").inc()
            raise CampaignInterrupted(
                len(results), len(tasks),
                self.journal.path if self.journal else None,
            )
        self._commit_shards()
        self._ingest_store()
        return results

    def close(self) -> None:
        if self.journal is not None:
            self.journal.close()

    def __enter__(self) -> "FabricExecutor":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- signal drain --------------------------------------------------------

    def _install_signal_handlers(self):
        if not self.drain_signals:
            return None
        if threading.current_thread() is not threading.main_thread():
            return None
        saved = {}
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                saved[sig] = signal.signal(sig, self._on_signal)
            except (ValueError, OSError):  # pragma: no cover - exotic hosts
                pass
        return saved

    @staticmethod
    def _restore_signal_handlers(saved) -> None:
        if not saved:
            return
        for sig, handler in saved.items():
            try:
                signal.signal(sig, handler)
            except (ValueError, OSError):  # pragma: no cover
                pass

    def _on_signal(self, signum, frame) -> None:
        if self._draining:
            raise KeyboardInterrupt
        self._draining = True
        print(
            "\nsignal received: draining fabric — absorbing in-flight "
            "reports and sealing the journal (signal again to abort)",
            file=sys.stderr,
        )

    def _drain(self, rnd: _Round, results: Dict[str, TaskResult]) -> None:
        """Stop dispatch, absorb in-flight reports for up to one lease."""
        self.coordinator.set_draining()
        deadline = time.monotonic() + self.coordinator.lease_ttl
        while (
            self.coordinator.outstanding_leases()
            and time.monotonic() < deadline
        ):
            for node, rec, spans in self.coordinator.take_inbox():
                self._absorb(node, rec, spans, results)
            self.coordinator.wait(0.05)
        for node, rec, spans in self.coordinator.take_inbox():
            self._absorb(node, rec, spans, results)

    # -- finalization (driver thread only) -----------------------------------

    def _maybe_demote_for_dead_fleet(self) -> None:
        """With no worker heard from within the grace window, pull queued
        work to the local queue so a fleetless campaign still completes."""
        if not self.local_fallback:
            return
        since = self.coordinator.seconds_since_contact()
        if since is None or since > self.worker_grace:
            self.coordinator.demote_idle_queue()

    def _local_callable(self) -> Callable[[Any], Any]:
        if self._local_fn is None:
            self._local_fn = task_registry.resolve(self.job).build(
                self.job.ctx
            )
            self._local_fn_is_json = True
        return self._local_fn

    def _run_local(
        self, state: _TaskState, results: Dict[str, TaskResult]
    ) -> None:
        fn = self._local_callable()
        payload = (
            state.payload_json if self._local_fn_is_json
            else state.task.payload
        )
        t0 = time.monotonic()
        try:
            value = fn(payload)
            outcome, error = TaskOutcome.OK, ""
        except Exception as exc:
            value = None
            outcome = classify_exception(exc)
            error = f"{type(exc).__name__}: {exc}"
        duration = time.monotonic() - t0
        self.coordinator.mark_done(state.task.id)
        self._finalize(
            state.task,
            TaskResult(
                state.task.id, outcome, value, error,
                attempts=state.dispatches + 1, duration=duration,
            ),
            results,
            node="local",
        )

    def _absorb(
        self,
        node: str,
        rec: dict,
        spans: list,
        results: Dict[str, TaskResult],
    ) -> None:
        """Finalize one accepted worker report (or re-dispatch it)."""
        rnd_state = None
        try:
            result = TaskResult.from_record(rec)
        except Exception:
            # A worker shipped garbage: treat as an infra failure of that
            # node and re-queue the task by reusing the demoted path.
            result = TaskResult(
                str(rec.get("task")), TaskOutcome.INFRA_ERROR, None,
                f"unusable report from node {node}",
            )
        with self.coordinator._lock:
            rnd = self.coordinator._round
            if rnd is not None:
                rnd_state = rnd.states.get(result.task_id)
        if rnd_state is None:  # pragma: no cover - stale report
            return
        attempts = max(result.attempts, rnd_state.dispatches)
        if result.outcome != TaskOutcome.OK and self.retry.should_retry(
            result.outcome, rnd_state.dispatches
        ):
            # Retryable infra outcome: hand it back to the fleet.
            get_metrics().counter("runtime.retries").inc()
            with self.coordinator._lock:
                rnd = self.coordinator._round
                if rnd is not None:
                    rnd.settled.discard(result.task_id)
                    rnd_state.status = "queued"
                    rnd.queue.append(result.task_id)
            return
        # final: stamp fabric provenance and total dispatch count
        result.attempts = attempts
        self._merge_spans(node, rec, spans)
        self._finalize(rnd_state.task, result, results, node=node)

    def _merge_spans(self, node: str, rec: dict, spans: list) -> None:
        """Fold a worker's per-task interior spans into the session trace."""
        tracer = get_tracer()
        if not tracer or not spans:
            return
        now_rel = time.perf_counter() - tracer.t0
        base = now_rel - float(rec.get("duration", 0.0))
        tracer.merge_foreign(spans, offset=base, node=node)
        get_metrics().counter("fabric.worker_spans_merged").inc(len(spans))

    def _finalize(
        self,
        task: Task,
        result: TaskResult,
        results: Dict[str, TaskResult],
        node: Optional[str] = None,
    ) -> None:
        results[task.id] = result
        if self.journal is not None:
            record = result.to_record(task.meta)
            if node is not None:
                record["node"] = node
            try:
                self.journal.append(record)
            except JournalWriteError as exc:
                raise ExecutorError(
                    "journal append failed; campaign aborted so completed "
                    f"work stays resumable: {exc}"
                ) from exc
        mx = get_metrics()
        if mx:
            mx.counter("runtime.tasks_completed").inc()
            mx.counter(f"runtime.outcome.{result.outcome}").inc()
            mx.histogram("runtime.task_seconds").observe(result.duration)
        get_tracer().add_event(
            "task", result.duration,
            id=task.id, outcome=result.outcome, attempts=result.attempts,
            node=node or "local",
        )
        if self._meter is not None:
            self._meter.advance()

    # -- commit --------------------------------------------------------------

    def _commit_shards(self) -> None:
        """Merge visible node shards into the canonical journal."""
        if self.journal is None or not self.coordinator.shard_dir:
            return
        merge_shards(self.journal, self.coordinator.shard_dir)

    def _ingest_store(self) -> None:
        """Fold the committed canonical journal into the results store.

        Runs after every shard commit (normal completion and drain), so
        the store tracks the journal's durable state; the ingest is keyed
        by record identity and is therefore a no-op for anything a prior
        commit already folded in.

        The journal — not the store — is the durable record, so a store
        sink that fails here (full disk, corrupt file, held lock) must
        not fail the completed campaign: the error is reported and
        counted, and ``repro store rebuild`` (or any later re-ingest)
        folds the same journal in once the store recovers.
        """
        if self.store is None or self.journal is None:
            return
        # Lazy import: the fabric must stay importable on worker nodes
        # that never touch the results store.
        from ...store import ingest_journal, open_store

        try:
            with open_store(self.store) as store:
                ingest_journal(store, self.journal.path)
        except Exception as exc:
            get_metrics().counter("store.ingest_failures").inc()
            print(
                "warning: results-store ingest failed "
                f"({type(exc).__name__}: {exc}); the journal at "
                f"{self.journal.path} remains the durable record — "
                "re-ingest it once the store is healthy "
                "(repro store rebuild)",
                file=sys.stderr,
            )
