"""Shared fixtures and helpers for the distributed-fabric suite.

Two fleet styles:

* **thread fleets** (`thread_worker`) run a :class:`FabricWorker` inside
  the test process — fast, no spawn cost, used for protocol/executor
  semantics.
* **process fleets** (`spawn_worker`) run :func:`run_worker` in a real
  spawned process — required for node-death tests (``os._exit`` /
  SIGKILL must kill a *process*, not a thread).

Everything is seeded: chaos workers take an explicit ``chaos_seed`` so a
failure replays exactly.
"""

import json
import multiprocessing
import os
import threading
import time

import pytest

from repro.runtime import Task, TaskOutcome
from repro.runtime.fabric import (
    FabricCoordinator,
    FabricExecutor,
    FabricWorker,
    run_worker,
    stub_job,
)

#: the single knob the chaos acceptance tests are parameterised by:
#: REPRO_FABRIC_SEED picks the base failure schedule (the fabric-chaos
#: CI job runs two fixed bases), and every assertion holds for any seed.
_BASE_SEED = int(os.environ.get("REPRO_FABRIC_SEED", "1"))
FABRIC_CHAOS_SEEDS = (_BASE_SEED, _BASE_SEED + 1)


def stub_tasks(prefix, n):
    """``n`` stub tasks whose payloads are their own indices."""
    return [Task(f"{prefix}/{i:02d}", i) for i in range(n)]


def expected_map(tasks, mul=2):
    """The fault-free result map every fabric run must converge to."""
    return {t.id: (TaskOutcome.OK, t.payload * mul) for t in tasks}


def outcome_map(results):
    return {k: (r.outcome, r.value) for k, r in results.items()}


def journaled_ids(path):
    """Task ids of every well-formed journal line (raw file order, no
    dedup) — the 'zero lost, zero duplicated records' check."""
    ids = []
    for line in path.read_text().splitlines():
        try:
            rec = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(rec, dict) and isinstance(rec.get("task"), str):
            ids.append(rec["task"])
    return ids


@pytest.fixture
def coordinator():
    """A started coordinator with test-friendly (short) lease timing."""
    coord = FabricCoordinator(lease_ttl=1.0, lease_batch=2,
                              poll_interval=0.02)
    coord.start()
    yield coord
    coord.stop()


class ThreadWorker:
    """A FabricWorker served from a daemon thread, joined on exit."""

    def __init__(self, address, node, **kwargs):
        kwargs.setdefault("rpc_timeout", 2.0)
        self.worker = FabricWorker(address, node, **kwargs)
        self._thread = threading.Thread(
            target=self.worker.serve,
            kwargs={
                "idle_exit": 30.0,
                "register_timeout": 5.0,
                "orphan_exit": 10.0,
            },
            name=f"test-{node}",
            daemon=True,
        )

    def start(self):
        self._thread.start()
        return self

    def stop(self, timeout=5.0):
        self.worker.stop()
        self._thread.join(timeout=timeout)
        assert not self._thread.is_alive(), "worker thread failed to exit"


@pytest.fixture
def thread_fleet(coordinator):
    """Factory: start N thread workers against ``coordinator``."""
    fleet = []

    def _spawn(n=2, **kwargs):
        for i in range(n):
            w = ThreadWorker(
                coordinator.address, f"t{i}", **kwargs
            ).start()
            fleet.append(w)
        return fleet

    yield _spawn
    for w in fleet:
        w.stop()


def spawn_worker(address, node, **kwargs):
    """One real worker process (spawn context, so no inherited state)."""
    kwargs.setdefault("idle_exit", 10.0)
    kwargs.setdefault("register_timeout", 10.0)
    kwargs.setdefault("orphan_exit", 5.0)
    kwargs.setdefault("rpc_timeout", 2.0)
    ctx = multiprocessing.get_context("spawn")
    proc = ctx.Process(
        target=run_worker, args=(tuple(address), node), kwargs=kwargs,
        daemon=True,
    )
    proc.start()
    return proc


def wait_for(predicate, timeout=10.0, interval=0.02):
    """Poll ``predicate`` until truthy; fail the test on timeout."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError("condition not reached within %.1fs" % timeout)


__all__ = [
    "FABRIC_CHAOS_SEEDS",
    "FabricCoordinator",
    "FabricExecutor",
    "ThreadWorker",
    "expected_map",
    "journaled_ids",
    "outcome_map",
    "spawn_worker",
    "stub_job",
    "stub_tasks",
    "wait_for",
]
