"""C601 fixture: `hits` is racy, `safe_hits` is locked on both sides."""

import threading


class StatsBoard:
    def __init__(self):
        self._lock = threading.Lock()
        self.hits = 0
        self.safe_hits = 0

    def start(self):
        t = threading.Thread(target=self.worker_loop)
        t.start()
        return t

    def worker_loop(self):
        self.hits += 1  # C601: thread-side write, no lock
        with self._lock:
            self.safe_hits += 1

    def report(self):
        total = self.hits  # driver-side read, no lock
        with self._lock:
            safe = self.safe_hits
        return total + safe
