"""Fixture: untimed network calls (F303) plus timed look-alikes.

Lives under ``runtime/fabric/`` so path classification grants the
``fabric`` scope the rule is gated on.
"""

import http.client
import socket
import urllib.request


def untimed():
    conn = http.client.HTTPConnection("coord", 8080)
    raw = socket.create_connection(("coord", 8080))
    resp = urllib.request.urlopen("http://coord:8080/rpc")
    bare = socket.socket()
    return conn, raw, resp, bare


def disabled(sock):
    sock.settimeout(None)


def timed(deadline):
    conn = http.client.HTTPConnection("coord", 8080, timeout=deadline)
    raw = socket.create_connection(("coord", 8080), 3.0)
    resp = urllib.request.urlopen("http://coord:8080/rpc", timeout=1.0)
    bare = socket.socket()
    bare.settimeout(2.0)
    return conn, raw, resp, bare
