"""Tests for tag-array layouts and tag AVF analysis."""

import numpy as np
import pytest

from repro.core import AvfStudy, FaultMode, NoProtection, Parity, SecDed
from repro.core.avf import StructureLifetimes
from repro.core.intervals import AceClass, IntervalSet
from repro.core.layout import build_tag_array
from repro.core.lifetime import derive_tag_lifetimes
from repro.workloads import run

ACE = int(AceClass.ACE)
DEAD = int(AceClass.READ_DEAD)


class TestTagLayout:
    def test_geometry(self):
        arr = build_tag_array(8, 4, tag_bytes=3)
        assert arr.rows == 8
        assert arr.cols == 4 * 24
        counts = np.bincount(arr.byte_of.ravel())
        assert (counts == 8).all()
        assert (arr.byte_of.ravel() // 3 == arr.domain_of.ravel()).all()

    def test_no_interleave_keeps_tags_contiguous(self):
        arr = build_tag_array(2, 2, tag_bytes=2)
        assert len(set(arr.domain_of[0, :16].tolist())) == 1

    def test_way_interleaving(self):
        arr = build_tag_array(2, 2, tag_bytes=2, factor=2)
        assert arr.domain_of[0, 0] != arr.domain_of[0, 1]

    def test_bad_factor(self):
        with pytest.raises(ValueError):
            build_tag_array(2, 3, factor=2)


class TestDeriveTagLifetimes:
    def _data(self, isets, line_bytes=4):
        return StructureLifetimes("d", isets, 0, 100)

    def test_tag_inherits_union_of_line(self):
        line0 = [
            IntervalSet([(0, 10, ACE)]),
            IntervalSet([(20, 30, DEAD)]),
            IntervalSet(),
            IntervalSet(),
        ]
        tags = derive_tag_lifetimes(self._data(line0), line_bytes=4, tag_bytes=2)
        assert len(tags.byte_isets) == 2
        for iset in tags.byte_isets:
            assert iset.total(ACE) == 10
            assert iset.total(DEAD) == 10

    def test_untouched_line_has_unace_tag(self):
        tags = derive_tag_lifetimes(
            self._data([IntervalSet()] * 8), line_bytes=4, tag_bytes=3
        )
        assert len(tags.byte_isets) == 6  # two lines x 3 tag bytes
        assert all(not s for s in tags.byte_isets)

    def test_ragged_input_rejected(self):
        with pytest.raises(ValueError):
            derive_tag_lifetimes(self._data([IntervalSet()] * 5), line_bytes=4)


class TestTagAvfEndToEnd:
    @pytest.fixture(scope="class")
    def study(self):
        r = run("matmul")
        return AvfStudy(r.apu, r.output_ranges)

    def test_tag_avf_positive_when_cache_used(self, study):
        res = study.tag_avf("l1", FaultMode.linear(1), Parity())
        assert 0 < res.due_avf < 1

    def test_tag_avf_at_least_worst_data_byte(self, study):
        """A tag is ACE whenever *any* line byte is: tag SB-AVF >= data
        SB-AVF of the same cache."""
        tag = study.tag_avf("l1", FaultMode.linear(1), NoProtection())
        data = study.cache_avf("l1", FaultMode.linear(1), NoProtection())
        assert tag.sdc_avf >= data.sdc_avf

    def test_secded_tags_have_no_single_bit_avf(self, study):
        res = study.tag_avf("l1", FaultMode.linear(1), SecDed())
        assert res.total_avf == 0.0

    def test_interleaving_protects_2x1(self, study):
        plain = study.tag_avf("l1", FaultMode.linear(2), Parity())
        ilv = study.tag_avf("l1", FaultMode.linear(2), Parity(), factor=2)
        assert ilv.sdc_avf == 0.0
        assert plain.sdc_avf >= 0.0

    def test_l2_tags(self, study):
        res = study.tag_avf("l2", FaultMode.linear(1), Parity())
        assert res.n_groups > 0

    def test_bad_level(self, study):
        with pytest.raises(ValueError):
            study.tag_avf("l3", FaultMode.linear(1), Parity())
