"""``python -m repro`` entry point.

The ``__main__`` guard is load-bearing: the campaign runtime starts
worker processes with the ``spawn`` method, which re-imports this module
in every worker — an unguarded ``main()`` would re-run the CLI there.
"""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
