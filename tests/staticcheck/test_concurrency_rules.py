"""C-family (whole-program concurrency) rule tests against fixtures.

The fixtures under ``fixtures/concurrency/`` hold one deliberate
violation per rule at a pinned line, next to deliberately-clean
look-alikes that must stay quiet (locked twin attributes, try/finally
acquire, Condition.wait, consistent lock order, forwarded deadlines).
"""

from .conftest import findings_for


class TestC601UnsyncSharedState:
    def test_racy_attr_flagged_at_thread_write(self, fixture_findings):
        assert findings_for(fixture_findings, "C601") == [
            ("concurrency/unsync_counter.py", 18),  # self.hits += 1
        ]

    def test_message_names_both_sides(self, fixture_findings):
        f = [x for x in fixture_findings if x.rule == "C601"][0]
        assert "'hits'" in f.message
        assert "StatsBoard.worker_loop" in f.message
        assert "StatsBoard.report" in f.message

    def test_locked_twin_not_flagged(self, fixture_findings):
        # safe_hits is mutated at 20 and read at 25, both under _lock
        flagged = {
            line for path, line in findings_for(fixture_findings, "C601")
            if path == "concurrency/unsync_counter.py"
        }
        assert 20 not in flagged
        assert 25 not in flagged


class TestC602BareAcquire:
    def test_bare_acquire_flagged(self, fixture_findings):
        assert findings_for(fixture_findings, "C602") == [
            ("concurrency/bare_acquire.py", 9),  # _lock.acquire()
        ]

    def test_try_finally_and_with_not_flagged(self, fixture_findings):
        flagged = {
            line for path, line in findings_for(fixture_findings, "C602")
            if path == "concurrency/bare_acquire.py"
        }
        assert 15 not in flagged  # acquire immediately guarded by finally
        assert 23 not in flagged  # with-block


class TestC603BlockingUnderLock:
    def test_sleep_under_lock_flagged(self, fixture_findings):
        assert findings_for(fixture_findings, "C603") == [
            ("concurrency/blocking_hold.py", 15),  # time.sleep in with
        ]

    def test_condition_wait_exempt(self, fixture_findings):
        # line 20: self._cond.wait() while holding self._cond
        assert ("concurrency/blocking_hold.py", 20) not in findings_for(
            fixture_findings, "C603"
        )

    def test_sleep_outside_lock_not_flagged(self, fixture_findings):
        assert ("concurrency/blocking_hold.py", 23) not in findings_for(
            fixture_findings, "C603"
        )


class TestC604LockOrderInversion:
    def test_abba_reported_once_at_later_order(self, fixture_findings):
        assert findings_for(fixture_findings, "C604") == [
            ("concurrency/abba.py", 20),  # debit: beta -> alpha
        ]

    def test_message_points_at_other_order(self, fixture_findings):
        f = [x for x in fixture_findings if x.rule == "C604"][0]
        assert "Transfer.alpha" in f.message
        assert "Transfer.beta" in f.message
        assert "concurrency/abba.py:15" in f.message  # credit's site


class TestC605DeadlineDropped:
    def test_both_halves_fire(self, fixture_findings):
        assert findings_for(fixture_findings, "C605") == [
            ("concurrency/handler_deadline.py", 8),   # untimed urlopen
            ("concurrency/handler_deadline.py", 16),  # dropped deadline_ms
        ]

    def test_timed_and_forwarded_calls_clean(self, fixture_findings):
        flagged = {
            line for path, line in findings_for(fixture_findings, "C605")
            if path == "concurrency/handler_deadline.py"
        }
        assert 12 not in flagged  # positional timeout passed
        assert 17 not in flagged  # deadline_ms forwarded
