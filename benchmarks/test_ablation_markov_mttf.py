"""Ablation: Markov-chain (MACAU-style) vs closed-form MTTF models.

The paper positions MB-AVF against MACAU (Sec. III): Markov models give
product MTTFs mixing technology and architecture, while MB-AVF isolates the
architectural factor.  This ablation runs both MTTF models of this library
over a protection/scrubbing sweep and checks they tell a consistent story:

* correction strength and scrubbing extend intrinsic MTTF;
* a realistic spatial-MBF defeat rate collapses the advantage of stronger
  codes — the motivation for analysing sMBFs architecturally.
"""

import pytest

from repro.core import SCHEMES, cache_mttf_hours
from repro.core.mttf import HOURS_PER_YEAR, mttf_smbf_hours

CACHE_BYTES = 32 << 20
RATE = 1.0  # FIT/Mbit


def _measure():
    table = {}
    for scheme_name in ("none", "parity", "secded", "dected"):
        scheme = SCHEMES[scheme_name]
        for scrub, scrub_label in ((None, "none"), (24.0, "daily")):
            for frac, frac_label in ((0.0, "no-smbf"), (0.001, "0.1%-smbf")):
                mttf = cache_mttf_hours(
                    scheme, CACHE_BYTES, raw_fit_per_mbit=RATE,
                    scrub_interval_hours=scrub, smbf_defeat_fraction=frac,
                )
                table[(scheme_name, scrub_label, frac_label)] = mttf
    return table


@pytest.mark.benchmark(group="ablation")
def test_ablation_markov_mttf(benchmark, report):
    table = benchmark.pedantic(_measure, rounds=1, iterations=1)
    lines = [f"{'scheme':<8} {'scrub':<6} {'smbf':<10} {'MTTF (hours)':>14}"]
    for (scheme, scrub, frac), mttf in table.items():
        lines.append(f"{scheme:<8} {scrub:<6} {frac:<10} {mttf:14.3e}")
    report("ablation_markov_mttf", lines)

    # Correction strength ordering (no smbf, no scrub).
    assert (
        table[("none", "none", "no-smbf")]
        <= table[("secded", "none", "no-smbf")]
        <= table[("dected", "none", "no-smbf")]
    )
    # Scrubbing helps codes that correct, not detection-only parity.
    assert table[("secded", "daily", "no-smbf")] > table[
        ("secded", "none", "no-smbf")
    ]
    assert table[("parity", "daily", "no-smbf")] == pytest.approx(
        table[("parity", "none", "no-smbf")]
    )
    # A 0.1% defeating-sMBF fraction flattens the hierarchy: SEC-DED's MTTF
    # falls to within 2x of the spatial-MBF bound, scrubbing or not.
    smbf_bound = mttf_smbf_hours(CACHE_BYTES * 8, RATE, 0.001)
    for scheme in ("secded", "dected"):
        got = table[(scheme, "daily", "0.1%-smbf")]
        assert got <= 2 * smbf_bound
    # ...which is orders of magnitude below the accumulation-limited MTTF.
    assert table[("secded", "daily", "0.1%-smbf")] < table[
        ("secded", "daily", "no-smbf")
    ] / 100
