"""The mypy pin: strict modules declared in pyproject, runnable when present.

mypy itself is an optional tool (CI installs it; the base test env may
not have it), so the actual type-check run is skip-gated — but the
configuration contract is asserted unconditionally.
"""

import shutil
import subprocess
import sys

import pytest

from .conftest import REPO

try:  # Python 3.11+
    import tomllib
except ImportError:  # pragma: no cover - py<3.11
    tomllib = None

STRICT_MODULES = {
    "repro.core.intervals",
    "repro.core.avf",
    "repro.ioutil",
    "repro.staticcheck",
    "repro.staticcheck.*",
}


@pytest.mark.skipif(tomllib is None, reason="tomllib needs python >= 3.11")
class TestPyprojectPin:
    def _config(self):
        with open(REPO / "pyproject.toml", "rb") as fh:
            return tomllib.load(fh)

    def test_mypy_section_exists(self):
        config = self._config()
        assert "mypy" in config["tool"]
        assert config["tool"]["mypy"]["mypy_path"] == "src"

    def test_strict_override_covers_kernels_and_linter(self):
        overrides = self._config()["tool"]["mypy"]["overrides"]
        strict = [o for o in overrides
                  if o.get("disallow_untyped_defs") is True]
        assert strict, "no strict override block found"
        covered = set(strict[0]["module"])
        assert STRICT_MODULES <= covered
        # the flags that together approximate `strict = true`
        for flag in ("disallow_incomplete_defs", "no_implicit_optional",
                     "strict_equality", "disallow_any_generics"):
            assert strict[0][flag] is True, flag

    def test_ruff_excludes_intentionally_bad_fixtures(self):
        config = self._config()
        assert "tests/staticcheck/fixtures" in (
            config["tool"]["ruff"]["extend-exclude"]
        )


@pytest.mark.skipif(
    shutil.which("mypy") is None, reason="mypy not installed"
)
def test_mypy_clean_on_strict_modules():
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "--config-file", "pyproject.toml",
         "src/repro/staticcheck", "src/repro/ioutil.py"],
        cwd=REPO, capture_output=True, text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
