"""Engine unit tests: scope classification, pragmas, discovery."""

from repro.staticcheck.engine import (
    _parse_pragmas,
    classify_scopes,
    load_module,
    scan_paths,
)

from .conftest import FIXTURES


class TestScopeClassification:
    def test_core_is_deterministic(self):
        assert "deterministic" in classify_scopes("core/avf.py")
        assert "deterministic" in classify_scopes("faultinject/modes.py")
        assert "deterministic" in classify_scopes("arch/gpu.py")
        assert "deterministic" in classify_scopes("workloads/matmul.py")

    def test_kernels(self):
        assert "kernel" in classify_scopes("core/intervals.py")
        assert "kernel" in classify_scopes("core/avf.py")
        assert "kernel" not in classify_scopes("core/serialize.py")

    def test_persistence(self):
        assert "persistence" in classify_scopes("runtime/journal.py")
        assert "persistence" in classify_scopes("obs/trace.py")
        assert "persistence" in classify_scopes("core/serialize.py")
        assert "persistence" not in classify_scopes("core/avf.py")

    def test_executor_is_special(self):
        assert "executor" in classify_scopes("runtime/executor.py")
        assert "executor" not in classify_scopes("runtime/journal.py")

    def test_service_surfaces(self):
        assert "service" in classify_scopes("report/service.py")
        assert "service" in classify_scopes("runtime/guard.py")
        assert "service" not in classify_scopes("runtime/journal.py")

    def test_cli_has_no_scopes(self):
        assert classify_scopes("cli.py") == set()


class TestPragmaParsing:
    def test_ignore_with_codes(self):
        sup, scopes, skip = _parse_pragmas(
            "x = 1  # staticcheck: ignore[D101, N204]\n"
        )
        assert sup == {1: frozenset({"D101", "N204"})}
        assert not skip

    def test_bare_ignore_suppresses_everything(self):
        sup, _, _ = _parse_pragmas("x = 1  # staticcheck: ignore\n")
        assert sup == {1: None}

    def test_skip_file_only_in_header(self):
        _, _, skip = _parse_pragmas("# staticcheck: skip-file\n")
        assert skip
        _, _, late = _parse_pragmas("\n" * 12 + "# staticcheck: skip-file\n")
        assert not late

    def test_scope_pragma(self):
        _, scopes, _ = _parse_pragmas(
            "# staticcheck: scope=kernel, deterministic\n"
        )
        assert scopes == {"kernel", "deterministic"}

    def test_unrelated_comments_ignored(self):
        sup, scopes, skip = _parse_pragmas("# plain comment\nx = 1  # todo\n")
        assert sup == {} and scopes == set() and not skip


class TestDiscoveryAndLoading:
    def test_scan_skips_pycache_and_sorts(self, tmp_path):
        (tmp_path / "pkg" / "__pycache__").mkdir(parents=True)
        (tmp_path / "pkg" / "__pycache__" / "a.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "b.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "a.py").write_text("x = 1\n")
        pairs = scan_paths([tmp_path])
        assert [rel for _, rel in pairs] == ["pkg/a.py", "pkg/b.py"]

    def test_single_file_relpath_is_its_name(self, tmp_path):
        f = tmp_path / "lonely.py"
        f.write_text("x = 1\n")
        assert scan_paths([f]) == [(f, "lonely.py")]

    def test_load_module_builds_parents_and_aliases(self):
        path = FIXTURES / "determinism" / "bad_rng.py"
        module = load_module(path, "determinism/bad_rng.py")
        assert module is not None
        assert module.aliases["np"] == "numpy"
        assert module.aliases["default_rng"] == "numpy.random.default_rng"
        # every non-root node has a recorded parent
        body0 = module.tree.body[0]
        assert module.parent(body0) is module.tree

    def test_load_module_skipfile_returns_none(self):
        path = FIXTURES / "skipfile.py"
        assert load_module(path, "skipfile.py") is None

    def test_pragma_scope_merges_with_path_scope(self, tmp_path):
        sub = tmp_path / "core"
        sub.mkdir()
        f = sub / "thing.py"
        f.write_text("# staticcheck: scope=kernel\nx = 1\n")
        module = load_module(f, "core/thing.py")
        assert {"kernel", "deterministic"} <= set(module.scopes)

    def test_load_module_raises_on_syntax_error(self):
        path = FIXTURES / "broken_syntax.py"
        try:
            load_module(path, "broken_syntax.py")
        except SyntaxError:
            pass
        else:  # pragma: no cover
            raise AssertionError("expected SyntaxError")
